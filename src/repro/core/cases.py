"""Case builders: the supercritical TGV benchmark and the rocket sector.

The TGV follows the paper's Sec. 4.1 setup: cubic domain of edge
2 pi L (L = 0.48 mm), triply periodic, p = 10 MPa, O2 at 150 K / CH4 at
300 K separated by a smooth interface, Taylor-Green initial velocity
with u0 = 4 m/s, 17-species LOX/CH4 chemistry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chemistry import load_mechanism
from ..chemistry.mechanism import Mechanism
from ..fv.boundary import FixedValue, ZeroGradient
from ..fv.fields import VolField
from ..mesh.rocket import build_rocket_mesh
from ..mesh.structured import build_box_mesh
from ..mesh.unstructured import UnstructuredMesh

__all__ = ["Case", "build_tgv_case", "build_hotspot_tgv_case",
           "build_rocket_case"]


@dataclass
class Case:
    """A ready-to-run flow case."""

    name: str
    mesh: UnstructuredMesh
    mech: Mechanism
    velocity: VolField
    pressure: VolField
    mass_fractions: np.ndarray  # (n_cells, ns)
    temperature: np.ndarray
    y_boundary: dict  # patch -> BC factory for species fields
    t_boundary: dict


def build_tgv_case(
    n: int = 16,
    length_l: float = 0.48e-3,
    pressure: float = 10e6,
    t_ox: float = 150.0,
    t_fuel: float = 300.0,
    u0: float = 4.0,
    interface_width: float = 0.1,
    mech: Mechanism | None = None,
) -> Case:
    """Supercritical reactive Taylor-Green vortex (Sec. 4.1)."""
    mech = mech or load_mechanism()
    side = 2.0 * np.pi * length_l
    mesh = build_box_mesh(n, n, n, lengths=(side, side, side),
                          periodic=(True, True, True))
    c = mesh.cell_centres
    x, y, z = c[:, 0] / length_l, c[:, 1] / length_l, c[:, 2] / length_l

    u = np.zeros((mesh.n_cells, 3))
    u[:, 0] = u0 * np.sin(x) * np.cos(y) * np.cos(z)
    u[:, 1] = -u0 * np.cos(x) * np.sin(y) * np.cos(z)

    # Fuel/oxidizer split: CH4 slab in the middle third of z, smooth
    # tanh interfaces (diffusion-flame configuration).
    zn = z / (2.0 * np.pi)  # 0..1
    mix = 0.5 * (np.tanh((zn - 1.0 / 3.0) / interface_width)
                 - np.tanh((zn - 2.0 / 3.0) / interface_width))
    mix = np.clip(mix, 0.0, 1.0)  # 1 = fuel
    yfr = np.zeros((mesh.n_cells, mech.n_species))
    yfr[:, mech.species_index["CH4"]] = mix
    yfr[:, mech.species_index["O2"]] = 1.0 - mix
    temp = t_ox + (t_fuel - t_ox) * mix

    vel = VolField("U", mesh, u)
    p = VolField("p", mesh, np.full(mesh.n_cells, pressure))
    return Case("tgv", mesh, mech, vel, p, yfr, temp, {}, {})


def build_hotspot_tgv_case(
    n: int = 16,
    t_hot: float = 1600.0,
    radius: float = 0.35,
    mech: Mechanism | None = None,
    **tgv_kwargs,
) -> Case:
    """TGV with an igniting hot blob near one corner.

    The stiffness-skewed workload of the chemistry load-balance tests
    and bench: chemistry cost concentrates in the blob's cells (they
    hit the graded ROS2/BDF paths while the cold bulk stays frozen),
    so a static domain decomposition cannot balance rank-level
    chemistry work.  ``radius`` is the blob size as a fraction of the
    normalized corner distance; remaining keywords go to
    :func:`build_tgv_case`.
    """
    case = build_tgv_case(n=n, mech=mech, **tgv_kwargs)
    c = case.mesh.cell_centres
    lo = c.min(axis=0)
    r = np.linalg.norm((c - lo) / (c.max(axis=0) - lo), axis=1)
    case.temperature[r < radius] = float(t_hot)
    return case


def build_rocket_case(
    n_sectors: int = 1,
    nr: int = 8,
    ntheta_per_sector: int = 10,
    nz: int = 24,
    pressure: float = 20e6,
    t_ox: float = 150.0,
    t_fuel: float = 300.0,
    inflow_velocity: float = 30.0,
    mech: Mechanism | None = None,
) -> Case:
    """Rocket-combustor sector at 20 MPa (Sec. 4.1 real-world case).

    Injector plate feeds alternating O2/CH4 by azimuthal position;
    chamber pre-filled with hot products to light the flame.
    """
    mech = mech or load_mechanism()
    mesh = build_rocket_mesh(nr=nr, ntheta_per_sector=ntheta_per_sector,
                             nz=nz, n_sectors=n_sectors)
    c = mesh.cell_centres
    theta = np.arctan2(c[:, 1], c[:, 0])
    zfrac = c[:, 2] / c[:, 2].max()

    # Alternating injector streams near the plate, hot core downstream.
    fuel_stream = (np.sin(theta * 127.0 / 16.0 * n_sectors) > 0).astype(float)
    near_plate = np.exp(-zfrac / 0.15)
    yfr = np.zeros((mesh.n_cells, mech.n_species))
    yfr[:, mech.species_index["CH4"]] = 0.25 * fuel_stream * near_plate
    yfr[:, mech.species_index["O2"]] = (1.0 - 0.25 * fuel_stream) * near_plate \
        + 0.2 * (1 - near_plate)
    yfr[:, mech.species_index["CO2"]] = 0.45 * (1.0 - near_plate)
    yfr[:, mech.species_index["H2O"]] = 0.35 * (1.0 - near_plate)
    yfr /= yfr.sum(axis=1, keepdims=True)
    temp = (t_ox + fuel_stream * (t_fuel - t_ox)) * near_plate \
        + 3200.0 * (1.0 - near_plate)

    u = np.zeros((mesh.n_cells, 3))
    u[:, 2] = inflow_velocity * (0.3 + 0.7 * zfrac)

    vel = VolField("U", mesh, u, boundary={
        "injector_plate": FixedValue(np.array([0.0, 0.0, inflow_velocity])),
        "outlet": ZeroGradient(),
    })
    p = VolField("p", mesh, np.full(mesh.n_cells, pressure), boundary={
        "outlet": FixedValue(pressure),
    })
    y_bc = {"injector_plate": "inflow", "outlet": "zerograd"}
    t_bc = {"injector_plate": "inflow", "outlet": "zerograd"}
    return Case(f"rocket_{n_sectors}sector", mesh, mech, vel, p, yfr, temp,
                y_bc, t_bc)
