"""Property evaluation paths: direct Peng-Robinson vs. PRNet.

Both expose the same call the solver makes once per time step:
``(h, p, Y) -> (rho, T, mu, alpha, cp)``.  The direct path performs the
Newton temperature inversion and cubic-EoS solves per cell; the PRNet
path is two batched MLP inferences -- the paper's computational
substitution, reproduced end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chemistry.mechanism import Mechanism
from ..constants import R_UNIVERSAL
from ..dnn.inference import InferenceEngine
from ..dnn.prnet import PRNet
from ..thermo.real_fluid import RealFluidMixture

__all__ = ["PropertySet", "DirectRealFluidProperties", "PRNetProperties",
           "IdealGasProperties"]


@dataclass
class PropertySet:
    """Per-cell property arrays the transport equations consume."""

    rho: np.ndarray
    temperature: np.ndarray
    mu: np.ndarray
    alpha: np.ndarray
    cp: np.ndarray


class DirectRealFluidProperties:
    """Iterative Peng-Robinson property evaluation (the PRNet target).

    ``batched_eos`` selects the batched companion-eigenvalue cubic
    solve (bitwise identical to the per-cell ``np.roots`` loop it
    replaces); ``False`` keeps the reference loop for validation and
    baseline benchmarking.  ``None`` (default) leaves a caller-supplied
    mixture's EoS untouched -- pass an explicit value only to override
    it (the override mutates the shared ``rf.eos``).
    """

    def __init__(self, mech: Mechanism, rf: RealFluidMixture | None = None,
                 batched_eos: bool | None = None):
        self.mech = mech
        self.rf = rf if rf is not None else RealFluidMixture(mech)
        if batched_eos is not None:
            self.rf.eos.batched_roots = bool(batched_eos)

    def evaluate(self, h, p, y, t_guess=None) -> PropertySet:
        props = self.rf.properties_hp(h, p, y, t_guess=t_guess)
        return PropertySet(props.rho, props.temperature, props.mu,
                           props.alpha, props.cp_mass)

    def h_from_t(self, t, p, y) -> np.ndarray:
        return self.rf.h_mass(t, p, y)


class PRNetProperties:
    """PRNet-surrogate property evaluation."""

    def __init__(self, prnet: PRNet,
                 density_engine: InferenceEngine | None = None,
                 transport_engine: InferenceEngine | None = None):
        if not prnet.trained:
            raise ValueError("PRNet must be trained before use")
        self.prnet = prnet
        self.density_engine = density_engine
        self.transport_engine = transport_engine

    def evaluate(self, h, p, y, t_guess=None) -> PropertySet:
        rho, t, mu, alpha, cp = self.prnet.predict(
            h, p, y, density_engine=self.density_engine,
            transport_engine=self.transport_engine)
        return PropertySet(np.maximum(rho, 1e-3), np.maximum(t, 60.0),
                           np.maximum(mu, 1e-7), np.maximum(alpha, 1e-9),
                           np.maximum(cp, 100.0))


class IdealGasProperties:
    """Ideal-gas path (cheap; for ideal-gas comparison rows of Table 1)."""

    def __init__(self, mech: Mechanism, mu0: float = 2e-5, pr: float = 0.7):
        self.mech = mech
        self.mu0 = mu0
        self.pr = pr

    def evaluate(self, h, p, y, t_guess=None) -> PropertySet:
        h = np.atleast_1d(np.asarray(h, dtype=float))
        y = np.atleast_2d(y)
        t = np.full(h.shape, 1000.0) if t_guess is None else \
            np.array(np.broadcast_to(t_guess, h.shape), dtype=float)
        # Cells freeze the moment *their own* relative criterion holds
        # (a batch-global criterion, or extra Newton updates on
        # already-converged cells, would make a cell's converged T
        # depend on what else shares its batch -- breaking
        # serial-vs-decomposed agreement when one rank holds a hot
        # region).
        for _ in range(40):
            resid = self.mech.h_mass_mixture(t, y) - h
            done = np.abs(resid) <= 1e-13 * (np.abs(h) + 1e3)
            if done.all():
                break
            cp = self.mech.cp_mass_mixture(t, y)
            t = np.where(done, t, np.clip(t - resid / cp, 60.0, 5000.0))
        w = self.mech.mean_molecular_weight(y)
        p_arr = np.broadcast_to(np.asarray(p, dtype=float), t.shape)
        rho = p_arr * w / (R_UNIVERSAL * t)
        cp = self.mech.cp_mass_mixture(t, y)
        mu = self.mu0 * (t / 300.0) ** 0.7
        alpha = mu / (rho * self.pr) * cp / cp  # nu/Pr
        return PropertySet(rho, t, mu, alpha, cp)

    def h_from_t(self, t, p, y) -> np.ndarray:
        return self.mech.h_mass_mixture(np.atleast_1d(np.asarray(t, float)),
                                        np.atleast_2d(y))
