"""Unified solver configuration: the :class:`SolverSettings` object.

Historically the knobs describing one solver run were scattered across
~10 constructor kwargs on :class:`~repro.core.DeepFlameSolver` and
:class:`~repro.dist.DecomposedSolver` (chemistry backend, transport
mode, fast assembly, corrector counts, two
:class:`~repro.solvers.controls.SolverControls`, rank counts, balance
mode, ...).  :class:`SolverSettings` gathers the full surface into one
typed, validated, serializable value object so that

* a solver is constructible from one argument
  (``DeepFlameSolver.from_settings`` /
  ``DecomposedSolver.from_settings`` / :func:`build_solver`),
* configurations compose: :meth:`SolverSettings.overlay` produces a
  derived settings object, which is what parameter sweeps, UQ
  ensembles and per-instance overrides in
  :mod:`repro.orchestrate` are built from (cf. muscle3's settings
  manager), and
* configurations round-trip through plain dicts
  (:meth:`SolverSettings.to_dict` / :meth:`SolverSettings.from_dict`)
  for files, CLIs and wire formats.

Resolution precedence everywhere is
``defaults < base settings < per-instance overlay < explicit kwarg``;
mixing a ``settings=`` object with explicit legacy kwargs still works
(the kwarg wins) but raises a :class:`DeprecationWarning` naming the
conflicting spellings.
"""

from __future__ import annotations

import copy
import warnings
from dataclasses import dataclass, field, fields, replace

from ..backend import backend_names
from ..solvers.controls import SolverControls

__all__ = [
    "SolverSettings",
    "TRANSPORT_MODES",
    "CHEMISTRY_MODES",
    "BALANCE_MODES",
    "PARTITION_METHODS",
    "KRYLOV_VARIANTS",
    "TRUST_GATE_MODES",
    "EXECUTION_MODES",
    "resolve_settings",
    "build_chemistry",
    "build_solver",
]

#: accepted ``SolverSettings.transport`` values
TRANSPORT_MODES = ("coupled", "per-species")
#: accepted ``SolverSettings.chemistry`` values; ``"hybrid-trained"``
#: loads a registered surrogate artifact and trust-gates the split
CHEMISTRY_MODES = ("none", "percell", "direct", "surrogate", "hybrid",
                   "hybrid-trained")
#: accepted ``SolverSettings.trust_gate`` values (canonical enforcement
#: lives in :class:`repro.chemistry.backends.HybridBackend`)
TRUST_GATE_MODES = ("off", "domain", "domain+audit")
#: accepted ``SolverSettings.balance_chemistry`` values (canonical home;
#: ``repro.dist.balance`` re-exports this tuple)
BALANCE_MODES = ("none", "static", "dynamic")
#: accepted ``SolverSettings.partition_method`` values
PARTITION_METHODS = ("multilevel", "spectral", "greedy", "blocks")
#: accepted ``SolverSettings.krylov_variant`` values (canonical home;
#: ``repro.dist.krylov`` re-exports this tuple)
KRYLOV_VARIANTS = ("synchronous", "overlapped")
#: accepted ``SolverSettings.execution`` values: ``"serial"`` executes
#: decomposed ranks rank-by-rank in the driver process over
#: :class:`~repro.runtime.comm.SimulatedComm`; ``"parallel"`` runs one
#: worker process per rank over the shared-memory fabric
EXECUTION_MODES = ("serial", "parallel")

#: sentinel distinguishing "caller did not pass this kwarg" from any
#: real value (including None) in the legacy constructor signatures
_UNSET = object()


def _default_scalar_controls() -> SolverControls:
    return SolverControls(tolerance=1e-9, rel_tol=1e-4, max_iterations=300)


def _default_pressure_controls() -> SolverControls:
    return SolverControls(tolerance=1e-9, rel_tol=1e-4, max_iterations=500)


@dataclass(frozen=True)
class SolverSettings:
    """Everything that configures one solver instance.

    A frozen value object: derive variants with :meth:`overlay`
    (never mutate).  The two :class:`SolverControls` fields use
    per-instance ``default_factory`` construction -- unlike the old
    constructor signatures, no two settings objects ever share a
    class-level mutable default.

    Parameters
    ----------
    chemistry:
        Chemistry backend choice (one of :data:`CHEMISTRY_MODES`).
        ``"surrogate"``/``"hybrid"`` need a trained net supplied via
        ``chemistry_options["odenet"]``; ``"hybrid-trained"`` loads a
        registered artifact instead (``chemistry_options["model"]``
        names it, default ``"tgv-hotspot"``) and applies the
        :attr:`trust_gate` (see :func:`build_chemistry`).
    chemistry_options:
        Extra keyword arguments for the backend constructor
        (e.g. ``rtol``, ``atol``, ``t_window``, ``audit_fraction``).
    trust_gate:
        Per-cell trust-gate mode of the ``"hybrid-trained"`` backend
        (one of :data:`TRUST_GATE_MODES`): domain check of each cell
        against the artifact's trained manifold, optionally plus
        direct-backend spot audits.  Other chemistry modes ignore it.
    transport:
        ``"coupled"`` (blocked multi-RHS solves) or ``"per-species"``.
    fast_assembly:
        Use the zero-reassembly workspace hot path.
    n_correctors:
        PISO pressure corrector count.
    solve_momentum:
        Solve the momentum + pressure system each step.
    scalar_controls, pressure_controls:
        Krylov convergence criteria for the scalar/blocked and
        pressure solves.
    ranks:
        ``0``/``1`` -> serial :class:`~repro.core.DeepFlameSolver`;
        ``>= 2`` -> domain-decomposed
        :class:`~repro.dist.DecomposedSolver` over that many ranks.
    partition_method, partition_seed:
        Graph-partitioner selection for the decomposed path.
    balance_chemistry:
        Chemistry load balancing mode (decomposed path only).
    balance_options:
        Forwarded to the :class:`~repro.dist.ChemistryLoadBalancer`.
    krylov_variant:
        Distributed Krylov dispatch (decomposed path only):
        ``"synchronous"`` runs the blocked solvers with one allreduce
        per reduction; ``"overlapped"`` the communication-avoiding
        variants (pipelined PCG for pressure, fused-reduction
        PBiCGStab for the scalar blocks).
    overlap_halo:
        Post the ghost refresh of every distributed matvec nonblocking
        and compute the interior rows while it is in flight
        (decomposed path only).
    execution:
        Decomposed-path execution mode (one of
        :data:`EXECUTION_MODES`).  ``"serial"`` (default) advances
        ranks rank-by-rank in the driver process over the simulated
        fabric -- bitwise and allocation-identical to the historical
        behaviour; ``"parallel"`` forks one worker process per rank
        and runs the identical SPMD step over the shared-memory fabric
        (:mod:`repro.runtime.shm`) on real cores.  Chemistry load
        balancing is driver-centric and therefore serial-only.
    chemistry_workers:
        Process-parallel chemistry batch path: ``>= 2`` wraps the
        direct/hybrid batch backend in a
        :class:`~repro.chemistry.backends.ParallelChemistryBackend`
        over that many forked workers; ``0``/``1`` keep the in-process
        backend untouched.
    backend:
        Array backend name for the hot-path kernels (a
        :mod:`repro.backend` registry name).  ``"numpy"`` (default) is
        the legacy in-place numpy hot path -- bitwise and
        allocation-identical to the pre-shim solver; any other name
        routes the fused assembly and the blocked-Krylov reductions
        through that backend's array namespace.  Validated against
        the registered names only -- whether the backend's runtime
        dependency imports is checked at first use, so settings for a
        GPU run can be built (and serialized) on a GPU-less host.
    """

    chemistry: str = "none"
    chemistry_options: dict = field(default_factory=dict)
    trust_gate: str = "domain+audit"
    transport: str = "coupled"
    fast_assembly: bool = True
    n_correctors: int = 2
    solve_momentum: bool = True
    scalar_controls: SolverControls = field(
        default_factory=_default_scalar_controls)
    pressure_controls: SolverControls = field(
        default_factory=_default_pressure_controls)
    ranks: int = 0
    partition_method: str = "multilevel"
    partition_seed: int = 0
    balance_chemistry: str = "none"
    balance_options: dict = field(default_factory=dict)
    krylov_variant: str = "synchronous"
    overlap_halo: bool = False
    backend: str = "numpy"
    execution: str = "serial"
    chemistry_workers: int = 0

    def __post_init__(self):
        # Accept plain dicts for the controls (the from_dict/CLI path).
        for name in ("scalar_controls", "pressure_controls"):
            val = getattr(self, name)
            if isinstance(val, dict):
                object.__setattr__(self, name, SolverControls(**val))
        self.validate()

    # -- validation ----------------------------------------------------
    def validate(self) -> "SolverSettings":
        """Raise ``ValueError``/``TypeError`` on any invalid field."""
        _check_choice("chemistry", self.chemistry, CHEMISTRY_MODES)
        _check_choice("trust_gate", self.trust_gate, TRUST_GATE_MODES)
        _check_choice("transport", self.transport, TRANSPORT_MODES)
        _check_choice("balance_chemistry", self.balance_chemistry,
                      BALANCE_MODES)
        _check_choice("partition_method", self.partition_method,
                      PARTITION_METHODS)
        _check_choice("krylov_variant", self.krylov_variant,
                      KRYLOV_VARIANTS)
        _check_choice("execution", self.execution, EXECUTION_MODES)
        if not isinstance(self.chemistry_workers, int) \
                or self.chemistry_workers < 0:
            raise ValueError(f"chemistry_workers must be a non-negative "
                             f"int (got {self.chemistry_workers!r})")
        if not isinstance(self.backend, str):
            raise TypeError(
                f"backend must be a registry name string "
                f"(got {self.backend!r}); pass ArrayBackend instances "
                f"directly to the kernel/workspace APIs instead")
        _check_choice("backend", self.backend, tuple(backend_names()))
        if not isinstance(self.overlap_halo, bool):
            raise TypeError(f"overlap_halo must be a bool "
                            f"(got {self.overlap_halo!r})")
        for name in ("scalar_controls", "pressure_controls"):
            if not isinstance(getattr(self, name), SolverControls):
                raise TypeError(f"{name} must be a SolverControls "
                                f"(got {getattr(self, name)!r})")
        for name in ("chemistry_options", "balance_options"):
            if not isinstance(getattr(self, name), dict):
                raise TypeError(f"{name} must be a dict")
        if not isinstance(self.ranks, int) or self.ranks < 0:
            raise ValueError(f"ranks must be a non-negative int "
                             f"(got {self.ranks!r})")
        if self.n_correctors < 1:
            raise ValueError("n_correctors must be >= 1")
        if self.balance_chemistry != "none" and self.ranks < 2:
            raise ValueError(
                "balance_chemistry requires a decomposed run (ranks >= 2)")
        if self.execution == "parallel" \
                and self.balance_chemistry != "none":
            raise ValueError(
                "balance_chemistry is driver-centric and runs under "
                "execution='serial' only")
        return self

    @property
    def is_decomposed(self) -> bool:
        """True when these settings describe a multi-rank run."""
        return self.ranks >= 2

    @property
    def workspace_backend(self) -> str | None:
        """The backend to hand the assembly/solve layer.

        ``None`` for ``"numpy"``: the legacy hot path IS the numpy
        backend (same kernels, zero dispatch overhead), so the
        default settings keep the solver bitwise and
        allocation-identical to the pre-shim code.
        """
        return None if self.backend == "numpy" else self.backend

    # -- derivation ----------------------------------------------------
    def overlay(self, **overrides) -> "SolverSettings":
        """A new settings object with ``overrides`` applied.

        Keys are field names; dotted paths reach into the nested
        controls (``overlay(**{"scalar_controls.tolerance": 1e-12})``).
        Unknown keys raise ``KeyError`` -- silently ignored overrides
        are how ensemble sweeps go wrong.
        """
        if not overrides:
            return self
        flat: dict = {}
        nested: dict[str, dict] = {}
        names = {f.name for f in fields(self)}
        for key, value in overrides.items():
            head, _, rest = key.partition(".")
            if head not in names:
                raise KeyError(
                    f"unknown SolverSettings field {head!r} "
                    f"(from override {key!r})")
            if rest:
                nested.setdefault(head, {})[rest] = value
            else:
                flat[key] = value
        for head, sub in nested.items():
            if head in flat:
                raise KeyError(
                    f"override {head!r} given both whole and dotted")
            target = getattr(self, head)
            if isinstance(target, SolverControls):
                control_names = {f.name for f in fields(target)}
                for sub_key in sub:
                    if sub_key not in control_names:
                        raise KeyError(
                            f"unknown {head} field {sub_key!r} "
                            f"(from override {head}.{sub_key!r})")
                flat[head] = replace(target, **sub)
            elif isinstance(target, dict):
                merged = dict(target)
                merged.update(sub)
                flat[head] = merged
            else:
                raise KeyError(f"field {head!r} does not support dotted "
                               f"overrides")
        return replace(self, **flat)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """A plain-dict form that :meth:`from_dict` round-trips.

        Controls become nested dicts; option dicts are deep-copied.
        Non-serializable chemistry options (a trained ``odenet``
        object, say) are carried through by reference.
        """
        out: dict = {}
        for f in fields(self):
            val = getattr(self, f.name)
            if isinstance(val, SolverControls):
                val = {"tolerance": val.tolerance, "rel_tol": val.rel_tol,
                       "max_iterations": val.max_iterations}
            elif isinstance(val, dict):
                val = copy.copy(val)
            out[f.name] = val
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SolverSettings":
        """Build (and validate) settings from :meth:`to_dict` output."""
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise KeyError(
                f"unknown SolverSettings fields {sorted(unknown)!r}")
        return cls(**data)


def _check_choice(name: str, value, choices: tuple) -> None:
    if value not in choices:
        raise ValueError(f"unknown {name} {value!r}; use one of {choices}")


# ----------------------------------------------------------------------
def resolve_settings(settings: SolverSettings | None,
                     where: str = "solver", **explicit) -> SolverSettings:
    """Merge a constructor's explicit kwargs onto a settings object.

    ``explicit`` holds the constructor's keyword arguments *including*
    the :data:`_UNSET` sentinels; only the ones a caller actually
    passed participate.  Precedence: defaults < ``settings`` <
    explicit kwarg.  Passing both a settings object and legacy kwargs
    works (the kwarg wins) but is deprecated -- the caller should fold
    the kwarg into ``settings.overlay(...)`` instead.
    """
    passed = {k: v for k, v in explicit.items() if v is not _UNSET}
    if settings is None:
        return SolverSettings().overlay(**passed)
    if passed:
        warnings.warn(
            f"{where}: legacy keyword(s) {sorted(passed)} override the "
            f"settings object; fold them into "
            f"SolverSettings.overlay(...) instead",
            DeprecationWarning, stacklevel=3)
        return settings.overlay(**passed)
    return settings


def build_chemistry(settings: SolverSettings, mech):
    """The chemistry adapter a :class:`SolverSettings` describes.

    ``"none"``/``"percell"``/``"direct"`` need only the mechanism;
    ``"surrogate"``/``"hybrid"`` additionally require a trained
    :class:`~repro.dnn.ODENet` under ``chemistry_options["odenet"]``
    (nets are trained artifacts, not configuration -- see
    ``examples/train_surrogates.py``).  ``"hybrid-trained"`` instead
    loads a versioned artifact from the model registry --
    ``chemistry_options`` may name the ``model`` (default
    ``"tgv-hotspot"``), a ``model_version`` and a ``registry`` root --
    wires up the optimized fp32 fused-GeLU inference engine and
    applies ``settings.trust_gate`` (see
    ``examples/train_hybrid_model.py`` for producing artifacts).
    """
    from .chemistry_source import (
        BatchedChemistry,
        DirectChemistry,
        HybridChemistry,
        NoChemistry,
        ODENetChemistry,
    )

    def wrap(adapter):
        """Fan the adapter's backend out over worker processes when
        ``settings.chemistry_workers`` asks for >= 2 workers."""
        if settings.chemistry_workers >= 2:
            from ..chemistry.backends import ParallelChemistryBackend

            adapter.backend = ParallelChemistryBackend(
                adapter.backend, settings.chemistry_workers,
                base_seed=settings.partition_seed)
        return adapter

    opts = dict(settings.chemistry_options)
    kind = settings.chemistry
    if kind == "none":
        return NoChemistry()
    if kind == "percell":
        return DirectChemistry(mech, **opts)
    if kind == "direct":
        return wrap(BatchedChemistry(mech, **opts))
    if kind == "hybrid-trained":
        odenet = opts.pop("odenet", None)
        if odenet is None:
            from ..dnn import ModelRegistry

            registry = (ModelRegistry(opts.pop("registry"))
                        if "registry" in opts else ModelRegistry.default())
            odenet = registry.load(opts.pop("model", "tgv-hotspot"), mech,
                                   opts.pop("model_version", None))
        if "engine" not in opts:
            # fused beats the paper's table on hosts with vectorized
            # transcendentals (the table targets machines without
            # them) and adds zero approximation error
            opts["engine"] = odenet.make_engine(precision="fp32",
                                                gelu="fused")
        # the domain gate replaces the coarse temperature proxy: keep
        # the window wide open unless the caller narrows it
        opts.setdefault("t_window", (0.0, 1e9))
        opts.setdefault("trust_gate", settings.trust_gate)
        return wrap(HybridChemistry(mech, odenet, **opts))
    odenet = opts.pop("odenet", None)
    if odenet is None:
        raise ValueError(
            f"chemistry={kind!r} needs a trained net in "
            f"chemistry_options['odenet']")
    if kind == "surrogate":
        return wrap(ODENetChemistry(odenet, **opts))
    return wrap(HybridChemistry(mech, odenet, **opts))


def build_solver(case, settings: SolverSettings, properties=None,
                 chemistry=None, comm=None, workspace=None):
    """Construct the solver a :class:`SolverSettings` describes.

    Dispatches on ``settings.ranks``: serial
    :class:`~repro.core.DeepFlameSolver` below 2, decomposed
    :class:`~repro.dist.DecomposedSolver` otherwise.  ``chemistry``
    overrides the settings' backend spec when given; ``workspace``
    (serial only) lets ensemble instances share one
    :class:`~repro.fv.workspace.EquationWorkspace`; ``comm``
    (decomposed only) supplies the rank fabric.
    """
    if settings.is_decomposed:
        from ..dist.solver import DecomposedSolver

        if workspace is not None:
            raise ValueError(
                "workspace sharing applies to serial solvers only")
        return DecomposedSolver.from_settings(
            case, settings, comm=comm, properties=properties,
            chemistry=chemistry)
    from .deepflame import DeepFlameSolver

    if comm is not None:
        raise ValueError("comm applies to decomposed solvers only")
    return DeepFlameSolver.from_settings(
        case, settings, properties=properties, chemistry=chemistry,
        workspace=workspace)
