"""Solver-facing chemistry adapters over the batched backend subsystem.

All chemistry now flows through :mod:`repro.chemistry.backends`: the
solver hands a whole mesh's worth of cells to a
:class:`~repro.chemistry.backends.ChemistryBackend` in one call and
gets back per-cell work statistics.  The classes here only adapt the
backend batch API to the solver's historical calling convention
``advance(T, p, Y, dt) -> (T_new, Y_new)`` and keep the
:class:`ChemistryStats` record the diagnostics and benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chemistry.backends import (
    BackendStats,
    ChemistryBackend,
    DirectBatchBackend,
    HybridBackend,
    PerCellBDFBackend,
    SurrogateBackend,
)
from ..chemistry.mechanism import Mechanism
from ..dnn.inference import InferenceEngine
from ..dnn.odenet import ODENet

__all__ = [
    "ChemistryStats",
    "BackendChemistry",
    "DirectChemistry",
    "BatchedChemistry",
    "ODENetChemistry",
    "HybridChemistry",
    "NoChemistry",
]


@dataclass
class ChemistryStats:
    """Per-call work statistics (per-cell where applicable)."""

    n_cells: int = 0
    steps_per_cell: np.ndarray = field(default_factory=lambda: np.zeros(0))
    wall_time: float = 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean - 1 of per-cell integration steps (0 when uniform)."""
        if self.steps_per_cell.size == 0 or self.steps_per_cell.mean() == 0:
            return 0.0
        return float(self.steps_per_cell.max() / self.steps_per_cell.mean() - 1.0)


class BackendChemistry:
    """Adapt any :class:`ChemistryBackend` to the solver interface.

    Exposes the historical ``advance(T, p, Y, dt) -> (T_new, Y_new)``
    call plus ``last_stats`` (:class:`ChemistryStats`) and
    ``last_backend_stats`` (the full :class:`BackendStats`).
    """

    def __init__(self, backend: ChemistryBackend):
        self.backend = backend
        self.last_stats = ChemistryStats()
        self.last_backend_stats: BackendStats | None = None

    def advance(self, t, p, y, dt) -> tuple[np.ndarray, np.ndarray]:
        """Advance every cell by ``dt``; returns ``(T_new, Y_new)``."""
        y_new, t_new, stats = self.backend.advance(y, t, p, dt)
        self.last_backend_stats = stats
        self.last_stats = ChemistryStats(
            stats.n_cells, stats.work_per_cell, stats.wall_time)
        return t_new, y_new


class DirectChemistry(BackendChemistry):
    """Per-cell stiff BDF integration (the CVODE-style baseline)."""

    def __init__(self, mech: Mechanism, rtol: float = 1e-6, atol: float = 1e-10,
                 t_floor: float = 200.0, jacobian: str = "analytic"):
        super().__init__(PerCellBDFBackend(mech, rtol=rtol, atol=atol,
                                           t_floor=t_floor,
                                           jacobian=jacobian))
        self.mech = mech
        self.kinetics = self.backend.kinetics
        self.rtol, self.atol = rtol, atol
        self.t_floor = t_floor

    def _cell_rhs(self, pressure: float):
        """Per-cell reactor RHS closure (kept for the integrator-family
        benchmarks that time single-cell solves)."""
        return self.backend._cell_rhs(pressure)

    def _cell_jac(self, pressure: float):
        return self.backend._cell_jac(pressure)


class BatchedChemistry(BackendChemistry):
    """Vectorized stiffness-graded direct integration."""

    def __init__(self, mech: Mechanism, **kwargs):
        super().__init__(DirectBatchBackend(mech, **kwargs))
        self.mech = mech


class ODENetChemistry(BackendChemistry):
    """Batched ODENet inference (the paper's chemistry path).

    T is re-derived from (h, p, Y) by the solver; the backend returns
    the input temperatures untouched.
    """

    def __init__(self, odenet: ODENet, engine: InferenceEngine | None = None):
        super().__init__(SurrogateBackend(odenet, engine=engine))
        self.odenet = odenet
        self.engine = engine


class HybridChemistry(BackendChemistry):
    """Trust-gated temperature/stiffness-split DNN + direct integration.

    ``trust_gate``/``audit_*``/``ood_capacity`` configure the per-cell
    trust gate of the underlying
    :class:`~repro.chemistry.backends.HybridBackend`; the cumulative
    gate counters are exposed as :attr:`gate_counters`.
    """

    def __init__(
        self,
        mech: Mechanism,
        odenet: ODENet,
        engine: InferenceEngine | None = None,
        t_window: tuple[float, float] = (500.0, 3000.0),
        z_max: float | None = None,
        trust_gate: str = "off",
        audit_fraction: float = 0.02,
        audit_tol: float = 1e-6,
        audit_seed: int = 0,
        ood_capacity: int = 4096,
        **direct_kwargs,
    ):
        super().__init__(HybridBackend(
            SurrogateBackend(odenet, engine=engine),
            DirectBatchBackend(mech, **direct_kwargs),
            t_window=t_window, z_max=z_max, trust_gate=trust_gate,
            audit_fraction=audit_fraction, audit_tol=audit_tol,
            audit_seed=audit_seed, ood_capacity=ood_capacity,
        ))
        self.mech = mech
        self.odenet = odenet

    @property
    def gate_counters(self) -> dict:
        """Cumulative trust-gate hit/audit/fallback counters."""
        return self.backend.counters


class NoChemistry:
    """Frozen chemistry (non-reactive comparisons)."""

    def __init__(self) -> None:
        self.last_stats = ChemistryStats()
        self.last_backend_stats: BackendStats | None = None

    def advance(self, t, p, y, dt):
        t = np.atleast_1d(np.asarray(t, dtype=float))
        return t, np.atleast_2d(np.asarray(y, dtype=float))
