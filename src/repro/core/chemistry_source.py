"""Chemistry advancement paths: direct stiff integration vs. ODENet.

Both advance the composition of every cell over one CFD step at
constant pressure and enthalpy (operator splitting -- temperature is
re-derived from (h, p, Y) afterwards).  The direct path integrates the
detailed mechanism per cell with the BDF solver and *records per-cell
work counters*, exposing the load imbalance that motivates ODENet; the
ODENet path is one batched inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chemistry.kinetics import KineticsEvaluator
from ..chemistry.mechanism import Mechanism
from ..chemistry.ode import BDFIntegrator
from ..dnn.inference import InferenceEngine
from ..dnn.odenet import ODENet

__all__ = ["ChemistryStats", "DirectChemistry", "ODENetChemistry", "NoChemistry"]


@dataclass
class ChemistryStats:
    """Per-call work statistics (per-cell where applicable)."""

    n_cells: int = 0
    steps_per_cell: np.ndarray = field(default_factory=lambda: np.zeros(0))
    wall_time: float = 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean - 1 of per-cell integration steps (0 when uniform)."""
        if self.steps_per_cell.size == 0 or self.steps_per_cell.mean() == 0:
            return 0.0
        return float(self.steps_per_cell.max() / self.steps_per_cell.mean() - 1.0)


class DirectChemistry:
    """Per-cell stiff BDF integration (the CVODE-style baseline)."""

    def __init__(self, mech: Mechanism, rtol: float = 1e-6, atol: float = 1e-10,
                 t_floor: float = 200.0):
        self.mech = mech
        self.kinetics = KineticsEvaluator(mech)
        self.rtol, self.atol = rtol, atol
        self.t_floor = t_floor
        self.last_stats = ChemistryStats()

    def _cell_rhs(self, pressure: float):
        kin = self.kinetics

        def rhs(_t, state):
            temp = max(state[0], self.t_floor)
            y = np.clip(state[1:], 0.0, 1.0)
            dtdt, dydt = kin.constant_pressure_rhs(
                np.array([temp]), np.array([pressure]), y[None, :])
            return np.concatenate((dtdt, dydt[0]))

        return rhs

    def _cell_jac(self, pressure: float):
        kin = self.kinetics

        def jac(_t, state):
            n = state.size
            eps = np.sqrt(np.finfo(float).eps)
            dy = eps * np.maximum(np.abs(state), 1e-8)
            batch = np.tile(state, (n + 1, 1))
            batch[1:] += np.diag(dy)
            temps = np.maximum(batch[:, 0], self.t_floor)
            ys = np.clip(batch[:, 1:], 0.0, 1.0)
            dtdt, dydt = kin.constant_pressure_rhs(
                temps, np.full(n + 1, pressure), ys)
            f = np.concatenate((dtdt[:, None], dydt), axis=1)
            return (f[1:] - f[0]).T / dy

        return jac

    def advance(self, t, p, y, dt) -> tuple[np.ndarray, np.ndarray]:
        """Advance every cell by ``dt``; returns ``(T_new, Y_new)``."""
        import time as _time

        t = np.atleast_1d(np.asarray(t, dtype=float))
        y = np.atleast_2d(np.asarray(y, dtype=float))
        p = np.broadcast_to(np.asarray(p, dtype=float), t.shape)
        n = t.shape[0]
        t_new = t.copy()
        y_new = y.copy()
        steps = np.zeros(n)
        t0 = _time.perf_counter()
        for c in range(n):
            # Skip chemically frozen cells quickly (cold mixing regions
            # integrate in one cheap step -- the imbalance the paper
            # describes emerges naturally).
            solver = BDFIntegrator(self._cell_rhs(float(p[c])),
                                   jac=self._cell_jac(float(p[c])),
                                   rtol=self.rtol, atol=self.atol)
            state0 = np.concatenate(([t[c]], y[c]))
            _, ys = solver.solve((0.0, float(dt)), state0)
            steps[c] = solver.work.steps
            t_new[c] = max(ys[-1, 0], self.t_floor)
            yc = np.clip(ys[-1, 1:], 0.0, 1.0)
            y_new[c] = yc / yc.sum()
        self.last_stats = ChemistryStats(n, steps, _time.perf_counter() - t0)
        return t_new, y_new


class ODENetChemistry:
    """Batched ODENet inference (the paper's chemistry path)."""

    def __init__(self, odenet: ODENet, engine: InferenceEngine | None = None):
        if not odenet.trained:
            raise ValueError("ODENet must be trained before use")
        self.odenet = odenet
        self.engine = engine
        self.last_stats = ChemistryStats()

    def advance(self, t, p, y, dt) -> tuple[np.ndarray, np.ndarray]:
        import time as _time

        t = np.atleast_1d(np.asarray(t, dtype=float))
        y = np.atleast_2d(np.asarray(y, dtype=float))
        t0 = _time.perf_counter()
        y_new = self.odenet.advance(t, p, y, dt, engine=self.engine)
        wall = _time.perf_counter() - t0
        # Perfectly uniform work per cell -- the DNN's structural fix
        # for chemistry load imbalance.
        self.last_stats = ChemistryStats(t.shape[0], np.ones(t.shape[0]), wall)
        return t, y_new  # T re-derived from (h,p,Y) by the solver


class NoChemistry:
    """Frozen chemistry (non-reactive comparisons)."""

    def __init__(self) -> None:
        self.last_stats = ChemistryStats()

    def advance(self, t, p, y, dt):
        t = np.atleast_1d(np.asarray(t, dtype=float))
        return t, np.atleast_2d(np.asarray(y, dtype=float))
