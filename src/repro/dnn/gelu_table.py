"""Second-order GeLU tabulation (Sec. 3.3.2).

GeLU's tanh makes it the dominant cost of baseline DNN inference on
machines without transcendental accelerators (48 % / 57 % of DNN time
on Sunway / Fugaku).  The paper replaces it with a piecewise quadratic
table on [-3, 3] at interval 0.01, using the asymptotics
``GeLU(x) ~ 0`` for x < -3 and ``GeLU(x) ~ x`` for x > 3.

Each interval stores the 2nd-order Taylor coefficients at its midpoint;
evaluation is one index computation plus a two-term Horner -- no
transcendentals.  FP32 and FP16 table variants match the paper's two
precision modes.
"""

from __future__ import annotations

import numpy as np

from ..backend import get_backend
from .layers import gelu_exact, gelu_grad

__all__ = ["GeLUTable"]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)
_C = 0.044715


def _gelu_second_derivative(x: np.ndarray) -> np.ndarray:
    """Analytic d2 GeLU / dx2 of the tanh form."""
    u = _SQRT_2_OVER_PI * (x + _C * x**3)
    du = _SQRT_2_OVER_PI * (1.0 + 3.0 * _C * x * x)
    d2u = _SQRT_2_OVER_PI * 6.0 * _C * x
    t = np.tanh(u)
    sech2 = 1.0 - t * t
    # f = 0.5 x (1 + t);  f' = 0.5(1+t) + 0.5 x sech2 du
    # f'' = sech2 du + 0.5 x (sech2 d2u - 2 t sech2 du^2)
    return sech2 * du + 0.5 * x * sech2 * (d2u - 2.0 * t * du * du)


class GeLUTable:
    """Piecewise-quadratic GeLU approximation.

    Parameters
    ----------
    x_min, x_max, interval:
        Table range and spacing (paper: [-3, 3] at 0.01).
    precision:
        ``"fp32"`` stores coefficients in float32, ``"fp16"`` in
        float16 (both evaluated in their storage precision, matching
        the paper's Float and Mixed-FP16 modes); ``"fp64"`` for
        reference.
    """

    #: flops per element: index+clip (~2) + 2-term Horner (4).
    FLOPS_PER_ELEMENT = 6

    def __init__(self, x_min: float = -3.0, x_max: float = 3.0,
                 interval: float = 0.01, precision: str = "fp32"):
        self.x_min, self.x_max, self.interval = x_min, x_max, interval
        self.precision = precision
        n = int(round((x_max - x_min) / interval))
        mids = x_min + (np.arange(n) + 0.5) * interval
        dtype = {"fp64": np.float64, "fp32": np.float32,
                 "fp16": np.float16}[precision]
        self._mids = mids.astype(dtype)
        self._a = gelu_exact(mids).astype(dtype)
        self._b = gelu_grad(mids).astype(dtype)
        self._c = (0.5 * _gelu_second_derivative(mids)).astype(dtype)
        self.n_entries = n
        # per-backend device copies of (a, b, c), transferred once
        self._device_tables: dict[str, tuple] = {}

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Tabulated GeLU of ``x`` (identity/zero outside the range).

        The hot path is gather-bound: index math runs in fp32 (no
        fp64 round-trip), the interval midpoint is recomputed from the
        index instead of gathered, and the coefficient lookups go
        through ``np.take`` -- one fewer gather and markedly less
        temporary traffic than naive fancy indexing.
        """
        x = np.asarray(x)
        dtype = self._a.dtype
        xq = x.astype(dtype)
        xi = xq.astype(np.float32, copy=False)
        idx = ((xi - np.float32(self.x_min))
               * np.float32(1.0 / self.interval)).astype(np.intp)
        np.clip(idx, 0, self.n_entries - 1, out=idx)
        # same formula that built self._mids, so bitwise-equal to the
        # gathered midpoints at a fraction of the memory traffic
        mid = (self.x_min + (idx + 0.5) * self.interval).astype(dtype)
        d = xq - mid
        val = (np.take(self._a, idx)
               + d * (np.take(self._b, idx) + d * np.take(self._c, idx)))
        out = np.where(x < self.x_min, dtype.type(0.0),
                       np.where(x > self.x_max, xq, val))
        return out

    def apply_backend(self, x, backend=None):
        """Backend-generic tabulated GeLU (fp64 / fp32 tables).

        Same index math and two-term Horner as :meth:`__call__`, spelled
        in the Array API subset: fp32 index computation, truncating
        ``astype`` instead of ``.astype(np.intp)``, flattened ``take``
        gathers and ``where`` range handling (the midpoint recompute
        goes through an explicit float cast of the index -- mixed
        int-array/float-scalar arithmetic is outside the spec).  The
        coefficient tables are shipped to the device once per backend
        and cached.  The NumPy backend reproduces :meth:`__call__`
        bitwise.

        fp16 tables take a documented host fallback (``float16`` is
        optional in the Array API standard and ``array-api-strict``
        omits it): the legacy numpy path runs on host data and the
        result is transferred.
        """
        be = get_backend(backend)
        xp = be.xp
        xd = be.to_device(x)
        if self.precision == "fp16":
            return be.to_device(self(be.from_device(xd)))
        dt = be.dtype_of(self.precision)
        tabs = self._device_tables.get(be.name)
        if tabs is None:
            tabs = tuple(be.to_device(tab)
                         for tab in (self._a, self._b, self._c))
            self._device_tables[be.name] = tabs
        a_d, b_d, c_d = tabs

        xq = xp.astype(xd, dt)
        xi = xp.astype(xq, xp.float32)
        idx = xp.astype((xi - float(np.float32(self.x_min)))
                        * float(np.float32(1.0 / self.interval)), xp.int64)
        idx = xp.clip(idx, 0, self.n_entries - 1)
        idx_f = xp.astype(idx, xp.float64)
        mid = xp.astype(self.x_min + (idx_f + 0.5) * self.interval, dt)
        d = xq - mid
        shp = xq.shape
        idx1 = xp.reshape(idx, (-1,))

        def gather(tab):
            return xp.reshape(be.take(tab, idx1), shp)

        val = gather(a_d) + d * (gather(b_d) + d * gather(c_d))
        zero = xp.zeros(shp, dtype=dt)
        return xp.where(xd < self.x_min, zero,
                        xp.where(xd > self.x_max, xq, val))

    def max_error(self, n_samples: int = 200_001) -> float:
        """Max absolute error vs. exact GeLU over [x_min-1, x_max+1]."""
        xs = np.linspace(self.x_min - 1.0, self.x_max + 1.0, n_samples)
        return float(np.max(np.abs(
            self(xs).astype(np.float64) - gelu_exact(xs))))

    def table_bytes(self) -> int:
        """Memory footprint of the stored coefficients."""
        return int(self._a.nbytes + self._b.nbytes + self._c.nbytes
                   + self._mids.nbytes)
