"""Input/output transforms for the surrogates.

The paper Z-score-normalizes all DNN inputs (mean 0, std 1) -- the
property that makes FP16 inference viable (Sec. 3.3.1).  DeepFlame
additionally uses a Box-Cox power transform on species mass fractions
to spread the many-orders-of-magnitude dynamic range before
normalization; both are provided.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZScoreScaler", "BoxCoxTransform"]


class ZScoreScaler:
    """Per-feature standardization ``(x - mean) / std``."""

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "ZScoreScaler":
        """Record per-feature mean and (floored) std of ``x``."""
        x = np.asarray(x, dtype=float)
        self.mean = x.mean(axis=0)
        self.std = np.maximum(x.std(axis=0), 1e-30)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardize ``x`` with the fitted statistics."""
        self._check()
        return (np.asarray(x, dtype=float) - self.mean) / self.std

    def inverse(self, z: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        self._check()
        return np.asarray(z, dtype=float) * self.std + self.mean

    def _check(self) -> None:
        if self.mean is None:
            raise RuntimeError("scaler not fitted")

    def state(self) -> dict:
        """Serializable fitted statistics (see :meth:`from_state`)."""
        return {"mean": self.mean, "std": self.std}

    @classmethod
    def from_state(cls, state: dict) -> "ZScoreScaler":
        """Rebuild a fitted scaler from :meth:`state` output."""
        s = cls()
        s.mean = np.asarray(state["mean"], float)
        s.std = np.asarray(state["std"], float)
        return s


class BoxCoxTransform:
    """One-parameter Box-Cox ``(x^lambda - 1) / lambda`` on non-negative
    data (DeepFlame uses lambda ~ 0.1 for mass fractions)."""

    def __init__(self, lam: float = 0.1, eps: float = 1e-30):
        if lam <= 0:
            raise ValueError("lambda must be positive")
        self.lam = float(lam)
        self.eps = float(eps)

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Box-Cox transform of non-negative ``x`` (floored at eps)."""
        x = np.maximum(np.asarray(x, dtype=float), self.eps)
        return (np.power(x, self.lam) - 1.0) / self.lam

    def inverse(self, z: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform` (clipped at zero)."""
        base = np.maximum(1.0 + self.lam * np.asarray(z, dtype=float), 0.0)
        return np.power(base, 1.0 / self.lam)
