"""Multilayer perceptron container."""

from __future__ import annotations

import numpy as np

from .layers import GeLU, Identity, Linear

__all__ = ["MLP"]


class MLP:
    """A GeLU MLP with the architecture convention of the paper:
    ``sizes = (in, h1, ..., hk, out)`` -- GeLU after every hidden
    linear layer, a bare linear output layer.
    """

    def __init__(self, sizes: tuple[int, ...], seed: int = 0):
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        self.sizes = tuple(int(s) for s in sizes)
        rng = np.random.default_rng(seed)
        self.layers: list = []
        for i in range(len(sizes) - 1):
            self.layers.append(Linear(sizes[i], sizes[i + 1], rng))
            self.layers.append(GeLU() if i < len(sizes) - 2 else Identity())

    @property
    def n_in(self) -> int:
        """Input feature count."""
        return self.sizes[0]

    @property
    def n_out(self) -> int:
        """Output feature count."""
        return self.sizes[-1]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Full forward pass; ``training`` caches layer inputs."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate, accumulating every layer's parameter grads."""
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        """Reset all accumulated parameter gradients."""
        for layer in self.layers:
            layer.zero_grad()

    def parameters(self):
        """``(value, grad)`` pairs across all layers."""
        params = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def n_parameters(self) -> int:
        """Total trainable parameter count."""
        return int(sum(p.size for p, _ in self.parameters()))

    def linear_layers(self) -> list[Linear]:
        """The Linear layers in forward order (weights to persist)."""
        return [l for l in self.layers if isinstance(l, Linear)]

    def flops_per_sample(self) -> int:
        """Dense flops per input sample (linear layers only)."""
        return sum(l.flops_per_sample() for l in self.linear_layers())

    def activation_elements_per_sample(self) -> int:
        """Total hidden-activation elements (GeLU workload) per sample."""
        return int(sum(self.sizes[1:-1]))

    # -- persistence --------------------------------------------------
    def save(self, path) -> None:
        """Store sizes and weights as one npz archive."""
        arrays = {}
        for i, lin in enumerate(self.linear_layers()):
            arrays[f"w{i}"] = lin.weight
            arrays[f"b{i}"] = lin.bias
        np.savez(path, sizes=np.array(self.sizes), **arrays)

    @classmethod
    def load(cls, path) -> "MLP":
        """Rebuild a net saved by :meth:`save`."""
        data = np.load(path)
        net = cls(tuple(int(s) for s in data["sizes"]))
        for i, lin in enumerate(net.linear_layers()):
            lin.weight[:] = data[f"w{i}"]
            lin.bias[:] = data[f"b{i}"]
        return net
