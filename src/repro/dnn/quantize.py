"""FP16 / mixed-precision emulation (Sec. 3.3.1).

numpy has no fast half-precision GEMM, so FP16 *numerics* are emulated
faithfully while FP16 *speed* is captured by the performance model:

* weights and activations are rounded to IEEE float16,
* the matrix product accumulates in float32 (the "mixed" in
  mixed-FP16 -- both Sunway's and Fugaku's FP16 units accumulate
  wider),
* the layer output is rounded back to float16.

Z-score-normalized inputs keep values well inside the FP16 dynamic
range, which is exactly why the paper's precision losses stay at the
1.5 % level.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantize_fp16", "mixed_linear_forward", "QuantizedMLPWeights"]


def quantize_fp16(x: np.ndarray) -> np.ndarray:
    """Round to IEEE binary16 and return as float32 (value-exact)."""
    return np.asarray(x).astype(np.float16).astype(np.float32)


def mixed_linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray
) -> np.ndarray:
    """Linear layer with FP16 operands and FP32 accumulation."""
    xq = quantize_fp16(x)
    wq = quantize_fp16(weight)
    bq = quantize_fp16(bias)
    out = xq @ wq.T + bq  # float32 math on fp16-rounded values
    return quantize_fp16(out)


class QuantizedMLPWeights:
    """Pre-quantized copy of an MLP's linear-layer weights.

    Avoids re-rounding weights on every batch during inference (the
    real code stores FP16 weights once).
    """

    def __init__(self, mlp):
        self.layers = [
            (quantize_fp16(l.weight), quantize_fp16(l.bias))
            for l in mlp.linear_layers()
        ]

    def linear(self, idx: int, x: np.ndarray) -> np.ndarray:
        """Mixed-precision forward through stored layer ``idx``."""
        w, b = self.layers[idx]
        return quantize_fp16(quantize_fp16(x) @ w.T + b)
