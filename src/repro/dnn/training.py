"""Training: Adam optimizer, MSE loss, minibatch loop, gradient checks.

Replaces the PyTorch training pipeline the paper's surrogates come
from; small surrogates train in seconds in numpy, which is all the
accuracy experiments need (the paper-size architectures are exercised
for *inference* performance with calibrated weights).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .network import MLP

__all__ = ["Adam", "TrainingHistory", "train_mlp", "mse_loss", "gradient_check"]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean-squared error and its gradient w.r.t. ``pred``."""
    diff = pred - target
    n = diff.size
    return float(np.mean(diff * diff)), 2.0 * diff / n


class Adam:
    """Adam optimizer over a parameter/gradient pair list."""

    def __init__(self, params, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8):
        self.params = params
        self.lr = lr
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.m = [np.zeros_like(p) for p, _ in params]
        self.v = [np.zeros_like(p) for p, _ in params]
        self.t = 0

    def step(self) -> None:
        """One bias-corrected Adam update of every parameter."""
        self.t += 1
        b1t = 1.0 - self.beta1**self.t
        b2t = 1.0 - self.beta2**self.t
        for (p, g), m, v in zip(self.params, self.m, self.v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


@dataclass
class TrainingHistory:
    """Loss trajectory of a training run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)

    @property
    def final_train(self) -> float:
        """Last epoch's training loss."""
        return self.train_loss[-1]

    @property
    def final_val(self) -> float:
        """Last epoch's validation loss (NaN without a val split)."""
        return self.val_loss[-1] if self.val_loss else np.nan


def train_mlp(
    net: MLP,
    x: np.ndarray,
    y: np.ndarray,
    epochs: int = 200,
    batch_size: int = 64,
    lr: float = 1e-3,
    val_fraction: float = 0.1,
    seed: int = 0,
    lr_decay: float = 1.0,
) -> TrainingHistory:
    """Minibatch Adam training on (x, y); returns the loss history.

    Inputs are expected pre-scaled (see
    :class:`repro.dnn.scaling.ZScoreScaler`).
    """
    rng = np.random.default_rng(seed)
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    n = x.shape[0]
    n_val = int(n * val_fraction)
    perm = rng.permutation(n)
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    xv, yv = x[val_idx], y[val_idx]
    xt, yt = x[train_idx], y[train_idx]

    opt = Adam(net.parameters(), lr=lr)
    hist = TrainingHistory()
    for epoch in range(epochs):
        order = rng.permutation(xt.shape[0])
        epoch_loss, n_batches = 0.0, 0
        for start in range(0, xt.shape[0], batch_size):
            idx = order[start:start + batch_size]
            net.zero_grad()
            pred = net.forward(xt[idx], training=True)
            loss, grad = mse_loss(pred, yt[idx])
            net.backward(grad)
            opt.step()
            epoch_loss += loss
            n_batches += 1
        opt.lr *= lr_decay
        hist.train_loss.append(epoch_loss / max(n_batches, 1))
        if n_val:
            val_pred = net.forward(xv)
            hist.val_loss.append(mse_loss(val_pred, yv)[0])
    return hist


def gradient_check(net: MLP, x: np.ndarray, y: np.ndarray,
                   eps: float = 1e-6, n_checks: int = 20,
                   seed: int = 0) -> float:
    """Max relative error between backprop and central finite
    differences over ``n_checks`` random parameters."""
    rng = np.random.default_rng(seed)
    net.zero_grad()
    pred = net.forward(x, training=True)
    _, grad = mse_loss(pred, y)
    net.backward(grad)
    worst = 0.0
    params = net.parameters()
    for _ in range(n_checks):
        p, g = params[rng.integers(len(params))]
        flat_idx = rng.integers(p.size)
        idx = np.unravel_index(flat_idx, p.shape)
        orig = p[idx]
        p[idx] = orig + eps
        lp, _ = mse_loss(net.forward(x), y)
        p[idx] = orig - eps
        lm, _ = mse_loss(net.forward(x), y)
        p[idx] = orig
        fd = (lp - lm) / (2 * eps)
        denom = max(abs(fd), abs(g[idx]), 1e-12)
        worst = max(worst, abs(fd - g[idx]) / denom)
    return worst
