"""The optimized inference engine (Sec. 3.3).

The paper implements DNN inference without any third-party framework:
BLAS linear layers + activation, with three optimization knobs this
engine mirrors exactly:

* ``precision``: ``"fp32"`` (baseline) or ``"fp16"`` (mixed-precision
  linear layers, Sec. 3.3.1),
* ``gelu``: ``"exact"`` (tanh) or ``"table"`` (2nd-order tabulation,
  Sec. 3.3.2), plus ``"fused"`` -- the exact tanh form with fused
  dtype-preserving arithmetic, the fastest choice on hosts whose BLAS
  stack ships vectorized transcendentals (the table targets machines
  that lack them),
* ``batch_size``: batched evaluation enabling the double-buffered
  overlap of Sec. 3.3.3 (captured by the performance model).

Every run returns an :class:`InferenceStats` with wall time and the
flop counts the Flop/s reporting uses ("total FLOPs ... collected via
counting the effective FLOPs during neural network inference").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..backend import get_backend
from .gelu_table import GeLUTable
from .layers import GeLU, Linear, gelu_exact, gelu_fused
from .network import MLP
from .quantize import QuantizedMLPWeights

__all__ = ["InferenceStats", "InferenceEngine"]


@dataclass
class InferenceStats:
    """Measured cost of one inference call."""

    n_samples: int
    wall_time: float
    linear_flops: int
    activation_elements: int
    activation_flops: int

    @property
    def total_flops(self) -> int:
        """Linear plus activation flops of the call."""
        return self.linear_flops + self.activation_flops

    @property
    def flops_per_second(self) -> float:
        """Achieved throughput (0 when untimed)."""
        return self.total_flops / self.wall_time if self.wall_time > 0 else 0.0


class InferenceEngine:
    """Framework-free MLP inference with the paper's optimization knobs."""

    def __init__(
        self,
        net: MLP,
        precision: str = "fp32",
        gelu: str = "exact",
        batch_size: int = 8192,
        gelu_table: GeLUTable | None = None,
        backend=None,
    ):
        if precision not in ("fp64", "fp32", "fp16"):
            raise ValueError(f"unknown precision {precision!r}")
        if gelu not in ("exact", "fused", "table"):
            raise ValueError(f"unknown gelu mode {gelu!r}")
        if backend is not None and precision == "fp16":
            # the fp16 path quantizes through numpy-specific scaling
            # machinery and float16 is optional in the Array API
            raise ValueError("precision='fp16' runs on the host path "
                             "only; drop the backend selection")
        self.net = net
        self.precision = precision
        self.gelu_mode = gelu
        self.batch_size = int(batch_size)
        #: array backend for the matmul/GeLU stack (None = legacy numpy)
        self.backend = backend
        self._dev_weights: list | None = None
        self._quantized = QuantizedMLPWeights(net) if precision == "fp16" else None
        if gelu == "table":
            table_prec = "fp16" if precision == "fp16" else "fp32"
            self.table = gelu_table or GeLUTable(precision=table_prec)
        else:
            self.table = None
        self.last_stats: InferenceStats | None = None

    # ----------------------------------------------------------------
    def _activation(self, x: np.ndarray) -> np.ndarray:
        if self.table is not None:
            return self.table(x)
        if self.gelu_mode == "fused":
            return gelu_fused(x)
        return gelu_exact(x)

    def _forward_batch(self, x: np.ndarray) -> np.ndarray:
        if self.backend is not None:
            return self._forward_batch_backend(x)
        linear_idx = 0
        if self.precision == "fp32":
            x = x.astype(np.float32)
        for layer in self.net.layers:
            if isinstance(layer, Linear):
                if self._quantized is not None:
                    x = self._quantized.linear(linear_idx, x)
                elif self.precision == "fp32":
                    x = x @ layer.weight.astype(np.float32).T \
                        + layer.bias.astype(np.float32)
                else:
                    x = layer.forward(x)
                linear_idx += 1
            elif isinstance(layer, GeLU):
                x = self._activation(x)
        return np.asarray(x, dtype=np.float64)

    def _forward_batch_backend(self, x: np.ndarray) -> np.ndarray:
        """The matmul/GeLU stack on the selected array backend.

        The fp32 weight policy matches the legacy path exactly: weights
        and biases are cast on the host, shipped to the device once
        (cached for the engine's lifetime) and every layer computes
        ``x @ W^T + b`` via the backend ``matmul``.  On the NumPy
        backend the cached transposes are the same views the legacy
        expression builds, so fp32 results are bitwise-identical;
        matmul reduction order on other backends carries the documented
        ulp budget.  Output returns to the host as fp64, as the legacy
        path does.
        """
        be = get_backend(self.backend)
        if self._dev_weights is None:
            cast = np.float32 if self.precision == "fp32" else np.float64
            self._dev_weights = [
                (be.to_device(layer.weight.astype(cast).T),
                 be.to_device(layer.bias.astype(cast)))
                for layer in self.net.layers if isinstance(layer, Linear)
            ]
        dt = "fp32" if self.precision == "fp32" else "fp64"
        xd = be.to_device(x, dtype=dt)
        linear_idx = 0
        for layer in self.net.layers:
            if isinstance(layer, Linear):
                wt, bias = self._dev_weights[linear_idx]
                xd = be.matmul(xd, wt) + bias
                linear_idx += 1
            elif isinstance(layer, GeLU):
                if self.table is not None:
                    xd = self.table.apply_backend(xd, backend=be)
                elif self.gelu_mode == "fused":
                    xd = gelu_fused(xd, backend=be)
                else:
                    xd = gelu_exact(xd, backend=be)
        return np.asarray(be.from_device(xd), dtype=np.float64)

    def run(self, x: np.ndarray) -> np.ndarray:
        """Batched inference over all samples; records stats."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n = x.shape[0]
        out = np.empty((n, self.net.n_out))
        t0 = time.perf_counter()
        for start in range(0, n, self.batch_size):
            out[start:start + self.batch_size] = self._forward_batch(
                x[start:start + self.batch_size]
            )
        wall = time.perf_counter() - t0
        act_elems = n * self.net.activation_elements_per_sample()
        act_flops_per = (
            GeLUTable.FLOPS_PER_ELEMENT if self.table is not None
            else GeLU.FLOPS_PER_ELEMENT
        )
        self.last_stats = InferenceStats(
            n_samples=n,
            wall_time=wall,
            linear_flops=n * self.net.flops_per_sample(),
            activation_elements=act_elems,
            activation_flops=act_elems * act_flops_per,
        )
        return out

    __call__ = run
