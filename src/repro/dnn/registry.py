"""Versioned surrogate-model registry with continual-learning retraining.

A trained :class:`~repro.dnn.odenet.ODENet` is an *artifact*: weights
plus the input/output scalers and the training-manifold metadata the
trust gate needs.  This module gives those artifacts

* a **trust region** (:class:`TrustRegion`): per-feature bounds in the
  net's *scaled* input space, recorded at fit time, that the hybrid
  backend's domain gate checks each cell against;
* a **registry** (:class:`ModelRegistry`): versioned save/load with a
  JSON manifest per version carrying lineage (parent version), the
  training configuration and a small *replay* subset of the training
  data for rehearsal during later fine-tuning;
* **incremental retraining** (:func:`retrain_incremental`): fine-tune
  an existing net on accumulated out-of-distribution cells mixed with
  the replay subset (continual-learning style), accepting the new
  weights only when held-out in-distribution error does not regress.

Layout on disk (``root/<name>/``)::

    v0001.npz   weights + scalers + trust region (ODENet.save format)
    v0001.json  manifest: version, parent, notes, training metadata
    v0001.replay.npz  optional rehearsal subset
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .training import train_mlp

__all__ = ["TrustRegion", "ModelRegistry", "RetrainResult",
           "retrain_incremental"]


@dataclass
class TrustRegion:
    """Axis-aligned bounds on the net's scaled input features.

    Recorded at fit time from the scaled training features; a state is
    *in domain* when every scaled feature lies inside
    ``[lo - margin, hi + margin]``.  The margin (in scaled units,
    i.e. training-set standard deviations) absorbs the solver's
    between-step drift without admitting genuinely new regimes.
    """

    lo: np.ndarray
    hi: np.ndarray
    margin: float = 0.5

    @classmethod
    def fit(cls, scaled_feats: np.ndarray, margin: float = 0.5
            ) -> "TrustRegion":
        """Tight bounds of ``scaled_feats`` plus the given margin."""
        scaled_feats = np.atleast_2d(scaled_feats)
        return cls(lo=scaled_feats.min(axis=0).copy(),
                   hi=scaled_feats.max(axis=0).copy(),
                   margin=float(margin))

    def contains(self, scaled_feats: np.ndarray) -> np.ndarray:
        """Boolean per-row in-domain mask."""
        scaled_feats = np.atleast_2d(scaled_feats)
        lo = self.lo - self.margin
        hi = self.hi + self.margin
        return ((scaled_feats >= lo) & (scaled_feats <= hi)).all(axis=1)

    def distance(self, scaled_feats: np.ndarray) -> np.ndarray:
        """Per-row max excess beyond the margined bounds (0 inside)."""
        scaled_feats = np.atleast_2d(scaled_feats)
        below = (self.lo - self.margin) - scaled_feats
        above = scaled_feats - (self.hi + self.margin)
        return np.maximum(np.maximum(below, above), 0.0).max(axis=1)

    def expand(self, scaled_feats: np.ndarray) -> "TrustRegion":
        """A new region whose bounds also cover ``scaled_feats``."""
        scaled_feats = np.atleast_2d(scaled_feats)
        return TrustRegion(lo=np.minimum(self.lo, scaled_feats.min(axis=0)),
                           hi=np.maximum(self.hi, scaled_feats.max(axis=0)),
                           margin=self.margin)

    def state(self) -> dict:
        """Serializable form (see :meth:`from_state`)."""
        return {"lo": self.lo, "hi": self.hi,
                "margin": np.array(self.margin)}

    @classmethod
    def from_state(cls, state: dict) -> "TrustRegion":
        """Rebuild from :meth:`state` output (or an npz archive)."""
        return cls(lo=np.asarray(state["lo"], float),
                   hi=np.asarray(state["hi"], float),
                   margin=float(np.asarray(state["margin"])))


class ModelRegistry:
    """Versioned on-disk store of trained surrogates.

    Versions of a model name form a lineage chain: each
    :meth:`save` records its ``parent`` version in the manifest, so a
    fine-tuned checkpoint is traceable back to the base training run.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @classmethod
    def default(cls) -> "ModelRegistry":
        """The registry shipped inside the package (committed models)."""
        return cls(Path(__file__).parent / "models")

    # -- paths ---------------------------------------------------------
    def _model_dir(self, name: str) -> Path:
        return self.root / name

    def _paths(self, name: str, version: str) -> tuple[Path, Path, Path]:
        d = self._model_dir(name)
        return (d / f"{version}.npz", d / f"{version}.json",
                d / f"{version}.replay.npz")

    # -- enumeration ---------------------------------------------------
    def names(self) -> list[str]:
        """Model names present in the registry."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def versions(self, name: str) -> list[str]:
        """Sorted version strings of ``name`` (``v0001`` style)."""
        d = self._model_dir(name)
        if not d.is_dir():
            return []
        return sorted(p.stem for p in d.glob("v*.json"))

    def latest(self, name: str) -> str:
        """The newest version of ``name``."""
        versions = self.versions(name)
        if not versions:
            raise FileNotFoundError(
                f"no versions of model {name!r} under {self.root}")
        return versions[-1]

    def manifest(self, name: str, version: str | None = None) -> dict:
        """The JSON manifest of one version (default: latest)."""
        version = version or self.latest(name)
        _, manifest_path, _ = self._paths(name, version)
        return json.loads(manifest_path.read_text())

    def lineage(self, name: str, version: str | None = None) -> list[str]:
        """Versions from the given one back to its root ancestor."""
        version = version or self.latest(name)
        chain = [version]
        while True:
            parent = self.manifest(name, chain[-1]).get("parent")
            if parent is None:
                return chain
            chain.append(parent)

    # -- persistence ---------------------------------------------------
    def save(self, odenet, name: str, parent: str | None = None,
             train_info: dict | None = None,
             replay: "TrainingSet | None" = None) -> str:
        """Store ``odenet`` as the next version of ``name``.

        Returns the new version string.  ``replay`` (a
        :class:`~repro.dnn.dataset.TrainingSet`) is stored alongside
        for rehearsal in later incremental retraining.
        """
        versions = self.versions(name)
        next_num = 1 + (int(versions[-1][1:]) if versions else 0)
        version = f"v{next_num:04d}"
        if parent is not None and parent not in versions:
            raise ValueError(f"parent {parent!r} is not a saved version "
                             f"of {name!r} ({versions})")
        d = self._model_dir(name)
        d.mkdir(parents=True, exist_ok=True)
        weights_path, manifest_path, replay_path = self._paths(name, version)
        odenet.save(weights_path)
        manifest = {
            "name": name,
            "version": version,
            "parent": parent,
            "hidden": list(odenet.net.sizes[1:-1]),
            "n_species": odenet.mech.n_species,
            "boxcox_lambda": odenet.boxcox.lam,
            "has_replay": replay is not None,
            "train_info": train_info or {},
        }
        manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        if replay is not None:
            np.savez_compressed(
                replay_path, t=replay.t, p=replay.p, y=replay.y,
                delta_y=replay.delta_y, dt=np.array(replay.dt),
                z=replay.z, regime=replay.regime.astype(str))
        return version

    def load(self, name: str, mech, version: str | None = None):
        """Load one version (default: latest) as a ready ``ODENet``."""
        from .odenet import ODENet

        version = version or self.latest(name)
        weights_path, _, _ = self._paths(name, version)
        return ODENet.load(weights_path, mech)

    def load_replay(self, name: str, version: str | None = None):
        """The stored rehearsal subset of one version (or ``None``)."""
        from .dataset import TrainingSet

        version = version or self.latest(name)
        _, _, replay_path = self._paths(name, version)
        if not replay_path.exists():
            return None
        data = np.load(replay_path, allow_pickle=False)
        return TrainingSet(
            t=data["t"], p=data["p"], y=data["y"],
            delta_y=data["delta_y"], dt=float(data["dt"]), z=data["z"],
            regime=data["regime"].astype(object))


@dataclass
class RetrainResult:
    """Outcome of one :func:`retrain_incremental` call."""

    accepted: bool
    id_error_before: float
    id_error_after: float
    ood_error_before: float
    ood_error_after: float


def _max_abs_error(odenet, ts) -> float:
    """Max absolute dY prediction error of ``odenet`` on a set."""
    pred = odenet.predict_delta_y(ts.t, ts.p, ts.y, ts.dt)
    return float(np.abs(pred - ts.delta_y).max())


def retrain_incremental(
    odenet,
    ood: "TrainingSet",
    replay: "TrainingSet | None" = None,
    id_holdout: "TrainingSet | None" = None,
    epochs: int = 150,
    lr: float = 3e-4,
    batch_size: int = 64,
    seed: int = 0,
    id_regression_factor: float = 1.5,
) -> RetrainResult:
    """Fine-tune ``odenet`` on out-of-distribution samples in place.

    Continual-learning protocol: the scalers stay frozen (so the
    in-distribution feature geometry is untouched), the OOD batch is
    mixed with the stored ``replay`` subset (rehearsal against
    forgetting), and the updated weights are **rolled back** unless the
    held-out in-distribution error stays within
    ``id_regression_factor`` of its pre-retraining value.  The factor
    applies to a *max*-norm error, which any fine-tune perturbs by tens
    of percent even with full-rehearsal replay -- 1.5 keeps the ID
    error well inside the hybrid gate's ``audit_tol`` budget while
    still rejecting genuinely forgetful updates.  On acceptance the
    net's trust region is expanded to cover the OOD states.

    Returns a :class:`RetrainResult`; ``odenet`` is modified only when
    ``accepted``.
    """
    combined = ood if replay is None else ood.merge(replay)
    id_err_before = (_max_abs_error(odenet, id_holdout)
                     if id_holdout is not None else 0.0)
    ood_err_before = _max_abs_error(odenet, ood)

    snapshot = [(w.copy(), b.copy()) for w, b in
                ((l.weight, l.bias) for l in odenet.net.linear_layers())]
    feats = odenet.scaled_features(combined.t, combined.p, combined.y,
                                   combined.dt)
    targets = odenet.out_scaler.transform(combined.delta_y)
    train_mlp(odenet.net, feats, targets, epochs=epochs, lr=lr,
              batch_size=batch_size, seed=seed, lr_decay=0.995)

    id_err_after = (_max_abs_error(odenet, id_holdout)
                    if id_holdout is not None else 0.0)
    ood_err_after = _max_abs_error(odenet, ood)
    accepted = (ood_err_after < ood_err_before
                and id_err_after <= id_regression_factor * id_err_before)
    if not accepted:
        for lin, (w, b) in zip(odenet.net.linear_layers(), snapshot):
            lin.weight[:] = w
            lin.bias[:] = b
    elif odenet.domain is not None:
        odenet.domain = odenet.domain.expand(
            odenet.scaled_features(ood.t, ood.p, ood.y, ood.dt))
    return RetrainResult(accepted, id_err_before, id_err_after,
                         ood_err_before, ood_err_after)
