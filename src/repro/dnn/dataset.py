"""Training-data pipeline for the chemistry surrogates.

Samples ``(T, p, Y) -> dY`` pairs from the stiffness-graded direct
backend (:class:`~repro.chemistry.backends.DirectBatchBackend`) over
the regimes the solver actually visits: the supercritical TGV mixing
layer, the igniting hot-blob variant and the rocket-sector states.
Each regime contributes

* the case's own initial states (the exact manifold the solver starts
  from),
* short direct-integrated trajectories off those states (the states a
  few chemistry steps downstream),
* optionally, *transport-coupled* states collected from a real
  :class:`~repro.core.solver.DeepFlameSolver` run with direct
  chemistry in the loop (``transport_steps``) -- these carry the
  per-cell pressure variation and advective drift the chemistry-only
  trajectories cannot see, and
* multiplicative jitter (temperature, composition and pressure)
  around all of the above, covering drift between chemistry calls.

Sampling is deterministic given ``seed``; every sample carries the
direct backend's stiffness indicator ``z`` so the set's coverage can
be graded against the integrator's own sub-batch bins
(:meth:`TrainingSet.coverage`) and thinned per bin
(:meth:`TrainingSet.thin`) without losing the stiff tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chemistry.backends.direct import _DEFAULT_ROS2_BINS, DirectBatchBackend
from ..runtime.seeding import hash_normal

__all__ = ["TrainingSet", "REGIMES", "sample_regime", "sample_solver_states",
           "build_training_set"]

#: regimes :func:`sample_regime` knows how to build
REGIMES = ("tgv", "hotspot", "rocket")

#: stiffness-bin labels used by :meth:`TrainingSet.coverage`: the
#: direct backend's frozen threshold plus its graded ROS2 bounds
_COVERAGE_EDGES = (1e-5,) + tuple(z for z, _ in _DEFAULT_ROS2_BINS)


@dataclass
class TrainingSet:
    """One batch of supervised ``(state -> dY)`` pairs.

    Attributes
    ----------
    t, p, y:
        Input states: temperatures ``(n,)``, pressures ``(n,)`` and
        mass fractions ``(n, ns)``.
    delta_y:
        Direct-backend mass-fraction increments over ``dt``.
    dt:
        The chemistry step the labels were integrated over.
    z:
        Per-sample stiffness indicator (coverage metadata).
    regime:
        Per-sample regime label (one of :data:`REGIMES`).
    """

    t: np.ndarray
    p: np.ndarray
    y: np.ndarray
    delta_y: np.ndarray
    dt: float
    z: np.ndarray
    regime: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of (state, label) pairs in the set."""
        return int(self.t.shape[0])

    def subset(self, idx: np.ndarray) -> "TrainingSet":
        """The sub-set at integer/boolean index ``idx``."""
        return TrainingSet(self.t[idx], self.p[idx], self.y[idx],
                           self.delta_y[idx], self.dt, self.z[idx],
                           self.regime[idx])

    def merge(self, other: "TrainingSet") -> "TrainingSet":
        """Concatenation with ``other`` (same ``dt`` required)."""
        if other.dt != self.dt:
            raise ValueError(
                f"cannot merge training sets with dt {self.dt} and {other.dt}")
        return TrainingSet(
            np.concatenate([self.t, other.t]),
            np.concatenate([self.p, other.p]),
            np.vstack([self.y, other.y]),
            np.vstack([self.delta_y, other.delta_y]),
            self.dt,
            np.concatenate([self.z, other.z]),
            np.concatenate([self.regime, other.regime]),
        )

    def split(self, holdout_fraction: float, seed: int = 0
              ) -> tuple["TrainingSet", "TrainingSet"]:
        """Deterministic ``(train, holdout)`` split."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.n_samples)
        n_hold = int(self.n_samples * holdout_fraction)
        return self.subset(perm[n_hold:]), self.subset(perm[:n_hold])

    # -- stiffness grading --------------------------------------------
    def _bin_index(self) -> np.ndarray:
        """Per-sample coverage-bin index (0 = frozen, last = stiffest)."""
        return np.searchsorted(np.asarray(_COVERAGE_EDGES), self.z,
                               side="right")

    def coverage(self) -> dict[str, int]:
        """Sample counts per stiffness bin of the direct integrator.

        Keys are ``"z<1e-05"``-style upper bounds (the frozen/ROS2
        grading of :class:`DirectBatchBackend`) plus ``"bdf"`` for the
        tail beyond the last graded bin.
        """
        labels = [f"z<{e:g}" for e in _COVERAGE_EDGES] + ["bdf"]
        bins = self._bin_index()
        return {lab: int((bins == i).sum()) for i, lab in enumerate(labels)}

    def thin(self, max_per_bin: int, seed: int = 0) -> "TrainingSet":
        """Cap every stiffness bin at ``max_per_bin`` samples.

        Deterministic stratified thinning: the (huge) frozen bin is
        subsampled while the stiff tail is kept intact, so smaller
        training sets keep their stiffness-graded coverage.
        """
        rng = np.random.default_rng(seed)
        bins = self._bin_index()
        keep: list[np.ndarray] = []
        for b in np.unique(bins):
            idx = np.flatnonzero(bins == b)
            if idx.size > max_per_bin:
                idx = np.sort(rng.choice(idx, size=max_per_bin,
                                         replace=False))
            keep.append(idx)
        return self.subset(np.sort(np.concatenate(keep)))


def _build_case(regime: str, mech, n: int, case_kwargs: dict | None):
    """The named regime's case object."""
    # Imported lazily: repro.core itself imports repro.dnn (the
    # chemistry adapters), so a module-level import here would make
    # package initialization order-dependent.
    from ..core import cases

    kwargs = dict(case_kwargs or {})
    if regime == "tgv":
        return cases.build_tgv_case(n=n, mech=mech, **kwargs)
    elif regime == "hotspot":
        return cases.build_hotspot_tgv_case(n=n, mech=mech, **kwargs)
    elif regime == "rocket":
        # the sector mesh needs its default axial resolution to stay
        # well-formed; n only scales the azimuthal direction
        kwargs.setdefault("ntheta_per_sector", max(4, n - 4))
        return cases.build_rocket_case(mech=mech, **kwargs)
    raise ValueError(f"unknown regime {regime!r}; use one of {REGIMES}")


def _solver_run_states(case, mech, dt: float, steps: int, chemistry=None
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Post-step ``(T, p, Y)`` batches from a real solver run.

    Advances the case through a :class:`DeepFlameSolver` with the
    given chemistry adapter (default: the direct backend) in the loop
    and collects the state after each step -- exactly the batches the
    hybrid backend sees at runtime, including the per-cell pressure
    drift that chemistry-only trajectories (constant ``p``) cannot
    produce.
    """
    from ..core import DeepFlameSolver, SolverSettings, build_chemistry

    chem = chemistry or build_chemistry(
        SolverSettings(chemistry="direct"), mech)
    solver = DeepFlameSolver.from_settings(
        case, SolverSettings(chemistry="none"), chemistry=chem)
    ts, ps, ys = [], [], []
    for _ in range(steps):
        # strongly transient cases (the hotspot's initial acoustic
        # wave) eventually blow the explicit pressure transient up;
        # keep only the physically sane prefix of the run
        try:
            solver.step(dt)
        except (FloatingPointError, np.linalg.LinAlgError):
            break
        t_s = solver.props.temperature.copy()
        p_s = solver.p.values.copy()
        y_s = solver.y.copy()
        healthy = (np.isfinite(t_s).all() and np.isfinite(p_s).all()
                   and np.isfinite(y_s).all()
                   and (t_s > 0).all() and (p_s > 0).all())
        if not healthy:
            break
        ts.append(t_s)
        ps.append(p_s)
        ys.append(y_s)
    if not ts:
        raise RuntimeError(
            "solver run produced no physically sane states to sample")
    return np.concatenate(ts), np.concatenate(ps), np.vstack(ys)


def sample_solver_states(
    mech,
    regime: str = "hotspot",
    dt: float = 1e-8,
    steps: int = 4,
    n: int = 12,
    chemistry=None,
    backend: DirectBatchBackend | None = None,
    case_kwargs: dict | None = None,
) -> TrainingSet:
    """Label the states a real solver run visits (closed-loop sampling).

    With ``chemistry`` left as the default direct adapter this covers
    the transport-coupled manifold; passing a *trained hybrid* adapter
    instead collects the states the surrogate itself steers the solver
    into -- the drifted manifold a deployed net must stay accurate on
    -- so its prediction errors can be trained away before they
    compound (the closing round of the surrogate training loop).
    Labels always come from the direct backend.
    """
    backend = backend or DirectBatchBackend(mech)
    case = _build_case(regime, mech, n, case_kwargs)
    t_in, p_in, y_in = _solver_run_states(case, mech, dt, steps,
                                          chemistry=chemistry)
    z = backend.stiffness_indicator(y_in, t_in, p_in, dt)
    y_adv, _, _ = backend.advance(y_in, t_in, p_in, dt)
    return TrainingSet(
        t=t_in, p=p_in, y=y_in, delta_y=y_adv - y_in, dt=float(dt), z=z,
        regime=np.full(t_in.shape[0], regime, dtype=object),
    )


def sample_regime(
    mech,
    regime: str = "hotspot",
    dt: float = 1e-8,
    seed: int = 0,
    n: int = 12,
    trajectory_steps: int = 5,
    transport_steps: int = 0,
    jitter_copies: int = 1,
    jitter_t: float = 0.005,
    jitter_y: float = 0.005,
    jitter_p: float = 0.005,
    backend: DirectBatchBackend | None = None,
    case_kwargs: dict | None = None,
) -> TrainingSet:
    """Sample one regime into a labelled :class:`TrainingSet`.

    Builds the regime's case, integrates its states forward through
    the direct backend for ``trajectory_steps`` chemistry steps
    (collecting every intermediate state), optionally collects
    ``transport_steps`` batches from a real solver run with direct
    chemistry in the loop (per-cell pressure variation included), adds
    ``jitter_copies`` multiplicative-jitter replicas of the collected
    states, and labels everything with one direct-backend ``advance``
    over ``dt``.

    Deterministic given ``seed``: the jitter replicas are stateless
    hashes of ``(seed, copy, element id)``
    (:mod:`repro.runtime.seeding`), so they are invariant under any
    chunking of the collection; ``case_kwargs`` go to the regime's
    case builder (e.g. ``{"t_hot": 2000.0}`` for a hotter blob).
    """
    backend = backend or DirectBatchBackend(mech)
    case = _build_case(regime, mech, n, case_kwargs)
    t0 = case.temperature.copy()
    y0 = case.mass_fractions.copy()
    p = float(case.pressure.values[0])

    ts, ys = [], []
    tc, yc = t0, y0
    for _ in range(trajectory_steps + 1):
        ts.append(tc.copy())
        ys.append(yc.copy())
        yc, tc, _ = backend.advance(yc, tc, p, dt)
    t_all = np.concatenate(ts)
    y_all = np.vstack(ys)
    p_all = np.full(t_all.shape, p)
    if transport_steps > 0:
        t_tr, p_tr, y_tr = _solver_run_states(case, mech, dt,
                                              transport_steps)
        t_all = np.concatenate([t_all, t_tr])
        p_all = np.concatenate([p_all, p_tr])
        y_all = np.vstack([y_all, y_tr])

    # jitter is keyed by (seed, copy stream, element id) -- stateless
    # hashes, not draw order -- so the replicas are identical no matter
    # how the collection is chunked or parallelized
    m = t_all.shape[0]
    row_ids = np.arange(m, dtype=np.int64)
    elem_ids = np.arange(y_all.size, dtype=np.int64).reshape(y_all.shape)
    t_parts, p_parts, y_parts = [t_all], [p_all], [y_all]
    for c in range(jitter_copies):
        jt = t_all * (1.0 + jitter_t * hash_normal(seed, 3 * c, row_ids))
        jp = p_all * (1.0 + jitter_p * hash_normal(seed, 3 * c + 1,
                                                   row_ids))
        jy = np.clip(
            y_all * (1.0 + jitter_y * hash_normal(seed, 3 * c + 2,
                                                  elem_ids)),
            0.0, None)
        jy /= jy.sum(axis=1, keepdims=True)
        t_parts.append(jt)
        p_parts.append(jp)
        y_parts.append(jy)
    t_in = np.concatenate(t_parts)
    y_in = np.vstack(y_parts)

    p_in = np.concatenate(p_parts)
    z = backend.stiffness_indicator(y_in, t_in, p_in, dt)
    y_adv, _, _ = backend.advance(y_in, t_in, p_in, dt)
    return TrainingSet(
        t=t_in, p=p_in, y=y_in, delta_y=y_adv - y_in, dt=float(dt), z=z,
        regime=np.full(t_in.shape[0], regime, dtype=object),
    )


def build_training_set(
    mech,
    regimes: tuple[str, ...] = ("hotspot",),
    dt: float = 1e-8,
    seed: int = 0,
    max_per_bin: int | None = None,
    **regime_kwargs,
) -> TrainingSet:
    """Merged training set over several regimes (tentpole entry point).

    One shared direct backend labels all regimes; per-regime seeds are
    derived from ``seed`` so the set is deterministic regardless of
    regime order.  ``max_per_bin`` applies stiffness-graded thinning
    (:meth:`TrainingSet.thin`) to the merged set.
    """
    backend = DirectBatchBackend(mech)
    parts = [
        sample_regime(mech, regime=r, dt=dt, seed=seed + 1000 * i,
                      backend=backend, **regime_kwargs)
        for i, r in enumerate(regimes)
    ]
    out = parts[0]
    for part in parts[1:]:
        out = out.merge(part)
    if max_per_bin is not None:
        out = out.thin(max_per_bin, seed=seed)
    return out
