"""Neural-network layers (numpy, from scratch).

Linear layers and the GeLU activation in the exact tanh form the paper
quotes: ``0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))``.  Each
layer implements ``forward`` and ``backward`` (accumulating parameter
gradients) plus a FLOP count per sample for the performance model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Linear", "GeLU", "Identity", "gelu_exact", "gelu_grad"]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)
_C = 0.044715


def gelu_exact(x: np.ndarray) -> np.ndarray:
    """GeLU via the tanh approximation (the transcendental-heavy form
    whose cost motivates the paper's tabulation)."""
    inner = _SQRT_2_OVER_PI * (x + _C * x**3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """d GeLU / dx (analytic)."""
    inner = _SQRT_2_OVER_PI * (x + _C * x**3)
    t = np.tanh(inner)
    sech2 = 1.0 - t * t
    return 0.5 * (1.0 + t) + 0.5 * x * sech2 * _SQRT_2_OVER_PI * (
        1.0 + 3.0 * _C * x * x
    )


class Linear:
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        # He-style initialization scaled for GeLU.
        self.weight = rng.normal(0.0, np.sqrt(2.0 / n_in), size=(n_out, n_in))
        self.bias = np.zeros(n_out)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return self.weight.shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.weight.T + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward(training=True)")
        self.grad_weight += grad_out.T @ self._x
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight

    def zero_grad(self) -> None:
        self.grad_weight[:] = 0.0
        self.grad_bias[:] = 0.0

    def parameters(self):
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]

    def flops_per_sample(self) -> int:
        n_out, n_in = self.weight.shape
        return 2 * n_in * n_out


class GeLU:
    """GeLU activation layer."""

    #: flops charged per element by the performance model (tanh
    #: expansion dominates; the paper's profile attributes ~half the
    #: baseline DNN time to it).
    FLOPS_PER_ELEMENT = 12

    def __init__(self) -> None:
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x = x
        return gelu_exact(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * gelu_grad(self._x)

    def zero_grad(self) -> None:  # no parameters
        pass

    def parameters(self):
        return []

    def flops_per_sample(self) -> int:
        return 0  # counted per-element by the engine


class Identity:
    """No-op activation (output layer)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out

    def zero_grad(self) -> None:
        pass

    def parameters(self):
        return []

    def flops_per_sample(self) -> int:
        return 0
