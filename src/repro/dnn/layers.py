"""Neural-network layers (numpy, from scratch).

Linear layers and the GeLU activation in the exact tanh form the paper
quotes: ``0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))``.  Each
layer implements ``forward`` and ``backward`` (accumulating parameter
gradients) plus a FLOP count per sample for the performance model.
"""

from __future__ import annotations

import numpy as np

from ..backend import get_backend

__all__ = ["Linear", "GeLU", "Identity", "gelu_exact", "gelu_fused",
           "gelu_grad"]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)
_C = 0.044715


def gelu_exact(x: np.ndarray, backend=None) -> np.ndarray:
    """GeLU via the tanh approximation (the transcendental-heavy form
    whose cost motivates the paper's tabulation).

    ``backend=None`` is the untouched legacy numpy body; an explicit
    backend evaluates the same expression through the array namespace
    (``pow`` spelled with a dtype-matched 0-D exponent, so the NumPy
    backend reproduces ``x**3``'s pow-ufunc path bitwise).
    """
    if backend is None:
        inner = _SQRT_2_OVER_PI * (x + _C * x**3)
        return 0.5 * x * (1.0 + np.tanh(inner))
    be = get_backend(backend)
    xp = be.xp
    xd = be.to_device(x)
    cube = xp.pow(xd, xp.asarray(3.0, dtype=xd.dtype))
    # the legacy body promotes through the float64 sqrt(2/pi) constant
    # AFTER the cube, so the cube is computed in the input dtype and
    # the tanh in float64 -- reproduce that promotion point explicitly
    # (a raw np.float64 constant binds weakly on strict backends and
    # would silently skip the upcast there)
    inner = float(_SQRT_2_OVER_PI) * xp.astype(xd + _C * cube, xp.float64)
    return 0.5 * xp.astype(xd, xp.float64) * (1.0 + xp.tanh(inner))


def gelu_fused(x: np.ndarray, backend=None) -> np.ndarray:
    """The same tanh-form GeLU with fused dtype-preserving arithmetic.

    Mathematically identical to :func:`gelu_exact` but written for
    hosts *with* vectorized transcendentals: the cube is expanded to
    multiplies (numpy's ``x**3`` takes the generic ``pow`` path, two
    orders of magnitude slower than ``x*x*x``) and the constants are
    cast to the input dtype so an fp32 activation stays in fp32 all
    the way through SIMD ``tanh``.  On such hosts this beats the
    paper's table -- the table exists for machines where ``tanh``
    itself is the bottleneck.

    With an explicit ``backend``, the identical multiply-expanded
    expression runs through the array namespace; Python-scalar
    constants bind to the input dtype per the Array API promotion
    rules, so fp32 stays fp32 on every backend.
    """
    if backend is not None:
        be = get_backend(backend)
        xp = be.xp
        xd = be.to_device(x)
        # python-float constants bind to the array dtype (Array API
        # promotion), matching the legacy dt.type(...) casts bitwise
        with np.errstate(over="ignore"):
            inner = xp.tanh(float(_SQRT_2_OVER_PI)
                            * (xd + _C * (xd * xd * xd)))
        return 0.5 * xd * (1.0 + inner)
    x = np.asarray(x)
    dt = x.dtype if x.dtype.kind == "f" else np.float64
    c1 = dt.type(_SQRT_2_OVER_PI)
    c2 = dt.type(_C)
    half = dt.type(0.5)
    one = dt.type(1.0)
    # the cube can overflow narrow dtypes on far-out-of-domain inputs;
    # the inf saturates tanh to +-1, which IS the correct asymptote
    with np.errstate(over="ignore"):
        inner = np.tanh(c1 * (x + c2 * (x * x * x)))
    return half * x * (one + inner)


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """d GeLU / dx (analytic)."""
    inner = _SQRT_2_OVER_PI * (x + _C * x**3)
    t = np.tanh(inner)
    sech2 = 1.0 - t * t
    return 0.5 * (1.0 + t) + 0.5 * x * sech2 * _SQRT_2_OVER_PI * (
        1.0 + 3.0 * _C * x * x
    )


class Linear:
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        # He-style initialization scaled for GeLU.
        self.weight = rng.normal(0.0, np.sqrt(2.0 / n_in), size=(n_out, n_in))
        self.bias = np.zeros(n_out)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_out, n_in)`` of the weight matrix."""
        return self.weight.shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """``x W^T + b``; caches ``x`` when ``training``."""
        if training:
            self._x = x
        return x @ self.weight.T + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return the input gradient."""
        if self._x is None:
            raise RuntimeError("backward before forward(training=True)")
        self.grad_weight += grad_out.T @ self._x
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients."""
        self.grad_weight[:] = 0.0
        self.grad_bias[:] = 0.0

    def parameters(self):
        """``(value, grad)`` pairs for the optimizer."""
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]

    def flops_per_sample(self) -> int:
        """Dense multiply-add flops per input sample."""
        n_out, n_in = self.weight.shape
        return 2 * n_in * n_out


class GeLU:
    """GeLU activation layer."""

    #: flops charged per element by the performance model (tanh
    #: expansion dominates; the paper's profile attributes ~half the
    #: baseline DNN time to it).
    FLOPS_PER_ELEMENT = 12

    def __init__(self) -> None:
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Elementwise GeLU; caches ``x`` when ``training``."""
        if training:
            self._x = x
        return gelu_exact(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Chain the cached input through the analytic GeLU grad."""
        return grad_out * gelu_grad(self._x)

    def zero_grad(self) -> None:
        """No parameters: a no-op."""

    def parameters(self):
        """No parameters: an empty list."""
        return []

    def flops_per_sample(self) -> int:
        """Zero here -- the engine counts GeLU per element."""
        return 0


class Identity:
    """No-op activation (output layer)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Pass ``x`` through unchanged."""
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Pass the gradient through unchanged."""
        return grad_out

    def zero_grad(self) -> None:
        """No parameters: a no-op."""

    def parameters(self):
        """No parameters: an empty list."""
        return []

    def flops_per_sample(self) -> int:
        """Zero: no arithmetic."""
        return 0
