"""ODENet: the chemistry surrogate (paper Sec. 2, Fig. 2).

Maps the thermochemical state ``(T, p, Y_1..Y_ns)`` to the mass-
fraction increment ``Y(t+dt) - Y(t)`` over one CFD time step,
replacing the stiff per-cell CVODE/BDF integration.  Inputs go through
a Box-Cox transform on the mass fractions (spreading their dynamic
range) followed by Z-score normalization; outputs are Z-score
normalized increments.

The paper's production architecture is (20, 2048, 4096, 2048, 1024,
512, 17): 17 species + temperature + pressure + time-step = 20 inputs.
:meth:`ODENet.paper_architecture` builds that size for performance
experiments; accuracy experiments train a smaller net (numpy training
at 21 M parameters would dominate the session for no scientific
gain -- the surrogate-accuracy claims are architecture-insensitive at
these scales).
"""

from __future__ import annotations

import numpy as np

from ..chemistry.mechanism import Mechanism
from .inference import InferenceEngine
from .network import MLP
from .registry import TrustRegion
from .scaling import BoxCoxTransform, ZScoreScaler
from .training import TrainingHistory, train_mlp

__all__ = ["ODENet"]

PAPER_HIDDEN = (2048, 4096, 2048, 1024, 512)


class ODENet:
    """Chemistry source-term surrogate."""

    def __init__(self, mech: Mechanism, hidden: tuple[int, ...] = (64, 64),
                 seed: int = 0, boxcox_lambda: float = 0.1):
        self.mech = mech
        ns = mech.n_species
        self.net = MLP((ns + 3,) + tuple(hidden) + (ns,), seed=seed)
        self.boxcox = BoxCoxTransform(boxcox_lambda)
        self.in_scaler = ZScoreScaler()
        self.out_scaler = ZScoreScaler()
        self.domain: TrustRegion | None = None
        self.trained = False

    @classmethod
    def paper_architecture(cls, mech: Mechanism, seed: int = 0) -> "ODENet":
        """The (20, 2048, 4096, 2048, 1024, 512, 17) production net."""
        return cls(mech, hidden=PAPER_HIDDEN, seed=seed)

    # ----------------------------------------------------------------
    def _features(self, t, p, y, dt) -> np.ndarray:
        t = np.atleast_1d(np.asarray(t, dtype=float))
        p = np.broadcast_to(np.asarray(p, dtype=float), t.shape)
        dt = np.broadcast_to(np.asarray(dt, dtype=float), t.shape)
        y = np.atleast_2d(y)
        return np.concatenate(
            [t[:, None], np.log(p)[:, None], np.log(dt)[:, None],
             self.boxcox.transform(y)], axis=1,
        )

    def fit(
        self,
        t: np.ndarray,
        p: np.ndarray,
        y: np.ndarray,
        delta_y: np.ndarray,
        dt: float,
        epochs: int = 400,
        lr: float = 3e-3,
        batch_size: int = 64,
        seed: int = 0,
        domain_margin: float = 0.5,
    ) -> TrainingHistory:
        """Train on sampled pairs (see :mod:`repro.dnn.dataset` or
        :meth:`repro.chemistry.reactor.ConstantPressureReactor.sample_training_pairs`).

        Fits the scalers, records the training manifold's
        :class:`~repro.dnn.registry.TrustRegion` (scaled-space bounds
        plus ``domain_margin``) for the hybrid backend's domain gate,
        then trains the net.
        """
        feats = self._features(t, p, y, dt)
        self.in_scaler.fit(feats)
        self.out_scaler.fit(delta_y)
        scaled = self.in_scaler.transform(feats)
        self.domain = TrustRegion.fit(scaled, margin=domain_margin)
        hist = train_mlp(
            self.net,
            scaled,
            self.out_scaler.transform(delta_y),
            epochs=epochs, lr=lr, batch_size=batch_size, seed=seed,
            lr_decay=0.995,
        )
        self.trained = True
        return hist

    def scaled_features(self, t, p, y, dt) -> np.ndarray:
        """The net's scaled input features for the given states.

        The coordinate system of :attr:`domain` -- the hybrid trust
        gate checks these rows against the trained manifold's bounds.
        """
        return self.in_scaler.transform(self._features(t, p, y, dt))

    # ----------------------------------------------------------------
    def predict_delta_y(
        self, t, p, y, dt, engine: InferenceEngine | None = None
    ) -> np.ndarray:
        """Predicted mass-fraction increments over ``dt``.

        ``engine`` selects the inference path (precision / GeLU mode);
        default is exact fp64 forward.
        """
        feats = self.in_scaler.transform(self._features(t, p, y, dt))
        if engine is None:
            raw = self.net.forward(feats)
        else:
            raw = engine.run(feats)
        return self.out_scaler.inverse(raw)

    def advance(self, t, p, y, dt, engine: InferenceEngine | None = None):
        """Apply the increment with positivity clipping and
        renormalization (DeepFlame's post-inference cleanup)."""
        dy = self.predict_delta_y(t, p, y, dt, engine=engine)
        y_new = np.clip(np.atleast_2d(y) + dy, 0.0, 1.0)
        return y_new / y_new.sum(axis=1, keepdims=True)

    def make_engine(self, precision: str = "fp32", gelu: str = "exact",
                    batch_size: int = 8192) -> InferenceEngine:
        """An :class:`InferenceEngine` over this net's weights."""
        return InferenceEngine(self.net, precision=precision, gelu=gelu,
                               batch_size=batch_size)

    # -- persistence --------------------------------------------------
    def save(self, path) -> None:
        """Store weights, scalers and trust region as one npz archive.

        The artifact a :class:`~repro.dnn.registry.ModelRegistry`
        versions; :meth:`load` restores a bit-identical surrogate.
        """
        if not self.trained:
            raise ValueError("refusing to save an untrained ODENet")
        arrays: dict = {"sizes": np.array(self.net.sizes),
                        "boxcox_lambda": np.array(self.boxcox.lam)}
        for i, lin in enumerate(self.net.linear_layers()):
            arrays[f"w{i}"] = lin.weight
            arrays[f"b{i}"] = lin.bias
        for prefix, scaler in (("in", self.in_scaler),
                               ("out", self.out_scaler)):
            st = scaler.state()
            arrays[f"{prefix}_mean"] = st["mean"]
            arrays[f"{prefix}_std"] = st["std"]
        if self.domain is not None:
            for key, val in self.domain.state().items():
                arrays[f"domain_{key}"] = val
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path, mech: Mechanism) -> "ODENet":
        """Restore an :meth:`ODENet.save` artifact for ``mech``."""
        data = np.load(path)
        sizes = tuple(int(s) for s in data["sizes"])
        if sizes[-1] != mech.n_species:
            raise ValueError(
                f"artifact has {sizes[-1]} output species, mechanism "
                f"has {mech.n_species}")
        net = cls(mech, hidden=sizes[1:-1], seed=0,
                  boxcox_lambda=float(data["boxcox_lambda"]))
        for i, lin in enumerate(net.net.linear_layers()):
            lin.weight[:] = data[f"w{i}"]
            lin.bias[:] = data[f"b{i}"]
        net.in_scaler = ZScoreScaler.from_state(
            {"mean": data["in_mean"], "std": data["in_std"]})
        net.out_scaler = ZScoreScaler.from_state(
            {"mean": data["out_mean"], "std": data["out_std"]})
        if "domain_lo" in data:
            net.domain = TrustRegion.from_state(
                {"lo": data["domain_lo"], "hi": data["domain_hi"],
                 "margin": data["domain_margin"]})
        net.trained = True
        return net
