"""From-scratch numpy DNN stack (the PyTorch substitute).

Linear/GeLU layers with backprop and Adam training, Z-score/Box-Cox
scaling, FP16 mixed-precision emulation, the 2nd-order GeLU tabulation
of Sec. 3.3.2, the ODENet chemistry surrogate, the PRNet real-fluid
property surrogate and the optimized batched inference engine.
"""

from .gelu_table import GeLUTable
from .inference import InferenceEngine, InferenceStats
from .layers import GeLU, Identity, Linear, gelu_exact, gelu_grad
from .network import MLP
from .odenet import ODENet
from .prnet import PRNet, sample_property_manifold
from .quantize import QuantizedMLPWeights, mixed_linear_forward, quantize_fp16
from .scaling import BoxCoxTransform, ZScoreScaler
from .training import Adam, TrainingHistory, gradient_check, mse_loss, train_mlp

__all__ = [
    "Adam",
    "BoxCoxTransform",
    "GeLU",
    "GeLUTable",
    "Identity",
    "InferenceEngine",
    "InferenceStats",
    "Linear",
    "MLP",
    "ODENet",
    "PRNet",
    "QuantizedMLPWeights",
    "TrainingHistory",
    "ZScoreScaler",
    "gelu_exact",
    "gelu_grad",
    "gradient_check",
    "mixed_linear_forward",
    "mse_loss",
    "quantize_fp16",
    "sample_property_manifold",
    "train_mlp",
]
