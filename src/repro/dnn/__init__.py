"""From-scratch numpy DNN stack (the PyTorch substitute).

Linear/GeLU layers with backprop and Adam training, Z-score/Box-Cox
scaling, FP16 mixed-precision emulation, the 2nd-order GeLU tabulation
of Sec. 3.3.2, the ODENet chemistry surrogate, the PRNet real-fluid
property surrogate and the optimized batched inference engine.
"""

from .dataset import (
    REGIMES,
    TrainingSet,
    build_training_set,
    sample_regime,
    sample_solver_states,
)
from .gelu_table import GeLUTable
from .inference import InferenceEngine, InferenceStats
from .layers import GeLU, Identity, Linear, gelu_exact, gelu_fused, gelu_grad
from .network import MLP
from .odenet import ODENet
from .prnet import PRNet, sample_property_manifold
from .quantize import QuantizedMLPWeights, mixed_linear_forward, quantize_fp16
from .registry import (
    ModelRegistry,
    RetrainResult,
    TrustRegion,
    retrain_incremental,
)
from .scaling import BoxCoxTransform, ZScoreScaler
from .training import Adam, TrainingHistory, gradient_check, mse_loss, train_mlp

__all__ = [
    "Adam",
    "BoxCoxTransform",
    "GeLU",
    "GeLUTable",
    "Identity",
    "InferenceEngine",
    "InferenceStats",
    "Linear",
    "MLP",
    "ModelRegistry",
    "ODENet",
    "PRNet",
    "QuantizedMLPWeights",
    "REGIMES",
    "RetrainResult",
    "TrainingHistory",
    "TrainingSet",
    "TrustRegion",
    "ZScoreScaler",
    "build_training_set",
    "gelu_exact",
    "gelu_fused",
    "gelu_grad",
    "gradient_check",
    "mixed_linear_forward",
    "mse_loss",
    "quantize_fp16",
    "retrain_incremental",
    "sample_property_manifold",
    "sample_regime",
    "sample_solver_states",
    "train_mlp",
]
