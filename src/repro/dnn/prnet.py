"""PRNet: the real-fluid property surrogate (paper Sec. 2, Fig. 2).

Under supercritical conditions every property evaluation requires a
cubic-EoS solve plus an iterative (h, p, Y) -> T inversion; PRNet
replaces it with two MLPs:

* a density net of size (3, 1024, 512, 256, 1):
  ``(h, p, Z) -> rho``,
* a transport net of size (3, 2048, 1024, 512, 4):
  ``(h, p, Z) -> (T, mu, alpha, cp)``,

where ``Z`` is the fuel mixture fraction (carbon+hydrogen element mass
fraction), matching the paper's 3-input nets.  Training data comes
from the direct Peng-Robinson path
(:class:`repro.thermo.real_fluid.RealFluidMixture`) sampled over the
flame manifold: mixing-line compositions blended toward complete
products across a temperature sweep.
"""

from __future__ import annotations

import numpy as np

from ..chemistry.mechanism import Mechanism
from ..chemistry.reactor import mixture_line
from ..thermo.real_fluid import RealFluidMixture
from .inference import InferenceEngine
from .network import MLP
from .scaling import ZScoreScaler
from .training import TrainingHistory, train_mlp

__all__ = ["PRNet", "sample_property_manifold"]

PAPER_DENSITY_HIDDEN = (1024, 512, 256)
PAPER_TRANSPORT_HIDDEN = (2048, 1024, 512)


def sample_property_manifold(
    mech: Mechanism,
    rf: RealFluidMixture,
    pressure: float,
    n_mix: int = 24,
    n_temp: int = 24,
    t_fuel: float = 300.0,
    t_ox: float = 150.0,
    t_max: float = 3800.0,
    seed: int = 0,
):
    """Sample (h, p, Z) -> property pairs along the flame manifold.

    For each mixing-line composition a temperature sweep from the
    frozen mixing temperature to ``t_max`` is evaluated, with the
    composition relaxed toward major products as temperature rises
    (a flamelet-style manifold; the 3-input PRNet is only well-posed on
    such a manifold, exactly as in the paper's TGV configuration).
    """
    tmix, ymix = mixture_line(mech, n_mix, pressure, t_fuel=t_fuel, t_ox=t_ox)
    i_co2 = mech.species_index["CO2"]
    i_h2o = mech.species_index["H2O"]
    i_ch4 = mech.species_index["CH4"]
    i_o2 = mech.species_index["O2"]

    feats, rho_t, trans_t = [], [], []
    for k in range(n_mix):
        t_lo = tmix[k]
        temps = np.linspace(t_lo, t_max, n_temp)
        for temp in temps:
            # Progress toward products increases with temperature.
            prog = np.clip((temp - t_lo) / (t_max - t_lo), 0.0, 1.0)
            y = ymix[k].copy()
            burnt = np.zeros_like(y)
            # Stoichiometric consumption of whichever reactant is limiting.
            f, o = y[i_ch4], y[i_o2]
            wf = mech.molecular_weights[i_ch4]
            wo = mech.molecular_weights[i_o2]
            react = min(f / wf, o / (2 * wo))  # mol of CH4 convertible
            burnt[i_ch4] = f - react * wf
            burnt[i_o2] = o - 2 * react * wo
            burnt[i_co2] = react * mech.molecular_weights[i_co2]
            burnt[i_h2o] = 2 * react * mech.molecular_weights[i_h2o]
            y = (1 - prog) * y + prog * burnt
            y = np.clip(y, 0.0, None)
            y = y / y.sum()
            props = rf.properties_tp(np.array([temp]), pressure, y[None, :])
            z = mech.element_mass_fractions(y[None, :])
            z_fuel = float(z[0, mech.elements.index("C")]
                           + z[0, mech.elements.index("H")])
            feats.append([float(props.h_mass[0]), pressure, z_fuel])
            rho_t.append([float(props.rho[0])])
            trans_t.append([temp, float(props.mu[0]),
                            float(props.alpha[0]), float(props.cp_mass[0])])
    return np.array(feats), np.array(rho_t), np.array(trans_t)


class PRNet:
    """Real-fluid property surrogate (density net + transport net)."""

    def __init__(self, mech: Mechanism,
                 density_hidden: tuple[int, ...] = (64, 32),
                 transport_hidden: tuple[int, ...] = (64, 64),
                 seed: int = 0):
        self.mech = mech
        self.density_net = MLP((3,) + tuple(density_hidden) + (1,), seed=seed)
        self.transport_net = MLP((3,) + tuple(transport_hidden) + (4,),
                                 seed=seed + 1)
        self.in_scaler = ZScoreScaler()
        self.rho_scaler = ZScoreScaler()
        self.trans_scaler = ZScoreScaler()
        self.trained = False

    @classmethod
    def paper_architecture(cls, mech: Mechanism, seed: int = 0) -> "PRNet":
        """(3,1024,512,256,1) density + (3,2048,1024,512,4) transport."""
        return cls(mech, density_hidden=PAPER_DENSITY_HIDDEN,
                   transport_hidden=PAPER_TRANSPORT_HIDDEN, seed=seed)

    # ----------------------------------------------------------------
    def fit(self, feats: np.ndarray, rho_targets: np.ndarray,
            transport_targets: np.ndarray, epochs: int = 600,
            lr: float = 3e-3, seed: int = 0) -> tuple[TrainingHistory, TrainingHistory]:
        """Targets are log-transformed before Z-scoring: density and the
        transport properties are positive and span decades across the
        real-fluid manifold (liquid-like to hot-gas states)."""
        self.in_scaler.fit(feats)
        self.rho_scaler.fit(np.log(np.maximum(rho_targets, 1e-6)))
        self.trans_scaler.fit(np.log(np.maximum(transport_targets, 1e-12)))
        xs = self.in_scaler.transform(feats)
        h1 = train_mlp(self.density_net, xs,
                       self.rho_scaler.transform(
                           np.log(np.maximum(rho_targets, 1e-6))),
                       epochs=epochs, lr=lr, seed=seed, lr_decay=0.997)
        h2 = train_mlp(self.transport_net, xs,
                       self.trans_scaler.transform(
                           np.log(np.maximum(transport_targets, 1e-12))),
                       epochs=epochs, lr=lr, seed=seed + 1, lr_decay=0.997)
        self.trained = True
        return h1, h2

    def fit_from_manifold(self, rf: RealFluidMixture, pressure: float,
                          **kwargs) -> tuple[TrainingHistory, TrainingHistory]:
        """Sample the real-fluid manifold at ``pressure`` and fit."""
        feats, rho_t, trans_t = sample_property_manifold(
            self.mech, rf, pressure)
        return self.fit(feats, rho_t, trans_t, **kwargs)

    # ----------------------------------------------------------------
    def features(self, h, p, y) -> np.ndarray:
        """(h, p, Z_fuel) features from state arrays."""
        h = np.atleast_1d(np.asarray(h, dtype=float))
        p = np.broadcast_to(np.asarray(p, dtype=float), h.shape)
        y = np.atleast_2d(y)
        z = self.mech.element_mass_fractions(y)
        z_fuel = z[:, self.mech.elements.index("C")] \
            + z[:, self.mech.elements.index("H")]
        return np.stack([h, p, z_fuel], axis=1)

    def predict(self, h, p, y,
                density_engine: InferenceEngine | None = None,
                transport_engine: InferenceEngine | None = None):
        """Returns ``(rho, T, mu, alpha, cp)`` arrays."""
        feats = self.in_scaler.transform(self.features(h, p, y))
        rho_raw = (density_engine.run(feats) if density_engine is not None
                   else self.density_net.forward(feats))
        tr_raw = (transport_engine.run(feats) if transport_engine is not None
                  else self.transport_net.forward(feats))
        rho = np.exp(self.rho_scaler.inverse(rho_raw))[:, 0]
        trans = np.exp(self.trans_scaler.inverse(tr_raw))
        return rho, trans[:, 0], trans[:, 1], trans[:, 2], trans[:, 3]
