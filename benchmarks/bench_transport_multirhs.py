"""Multi-RHS transport: coupled (blocked) vs per-species assemble+solve.

The paper's Fig. 11 decomposition singles out Construction + Solving as
the dominant PDE components of a step.  Both scale with the number of
transported scalars when every species equation is assembled and solved
on its own, even though all n_species systems share one left-hand side
(``ddt + div - laplacian`` with identical coefficients).  This bench
times the two paths of ``DeepFlameSolver`` on the same state:

* ``per-species`` — n_species sequential FVMatrix assemblies +
  PBiCGStab solves (the validation reference),
* ``coupled``     — one ``CoupledTransportEquation`` assembly + one
  blocked PBiCGStab solve over the ``(n_cells, n_species)`` block.

Gates: the coupled path must be >= 3x faster (construction + solve) on
the >= 5k-cell case and reproduce the per-species mass fractions to
<= 1e-8.  The momentum predictor (3 components, same refactor) is
reported as a second table.

Run:  pytest benchmarks/bench_transport_multirhs.py   (add --smoke for
the shrunken CI version)
"""

import time

import numpy as np
import pytest

from repro.core import DeepFlameSolver, NoChemistry, build_tgv_case
from repro.core.deepflame import StepTimings
from repro.solvers import SolverControls

from .conftest import emit

DT = 1e-8
#: tight controls so both paths converge to well below the 1e-8
#: field-agreement gate
CONTROLS = SolverControls(tolerance=1e-12, rel_tol=0.0, max_iterations=500)


@pytest.fixture(scope="module")
def solver(mech, smoke):
    """A warmed-up TGV solver (5832 cells full / 512 cells smoke)."""
    n = 8 if smoke else 18
    case = build_tgv_case(n=n, mech=mech)
    s = DeepFlameSolver(case, chemistry=NoChemistry(),
                        scalar_controls=CONTROLS)
    s.step(DT)  # settle fields, warm the kernels
    return s


def _time_stage(s, fn, args, reps, reset):
    """Best-of-reps wall time of one transport stage (state reset
    between reps); returns (timings, wall)."""
    best, best_tm = np.inf, None
    for _ in range(reps):
        reset()
        tm = StepTimings()
        t0 = time.perf_counter()
        fn(DT, *args, tm)
        wall = time.perf_counter() - t0
        if wall < best:
            best, best_tm = wall, tm
    return best_tm, best


def test_coupled_species_transport_speedup(solver, smoke):
    s = solver
    rho_old = s.rho.copy()
    d_eff = s.props.alpha
    y0 = s.y.copy()
    reps = 3 if smoke else 5

    def reset():
        s.y = y0.copy()

    tm_c, wall_c = _time_stage(
        s, s._species_transport_coupled, (rho_old, d_eff), reps, reset)
    y_coupled = s.y.copy()
    tm_p, wall_p = _time_stage(
        s, s._species_transport_sequential, (rho_old, d_eff), reps, reset)
    y_seq = s.y.copy()
    s.y = y0  # leave the shared fixture untouched

    d_y = np.abs(y_coupled - y_seq).max()
    speedup = (tm_p.construction + tm_p.solving) / (
        tm_c.construction + tm_c.solving)
    lines = [
        f"{s.mesh.n_cells} cells, {s.mech.n_species} species, dt = {DT:.0e} s",
        "path          construction [ms]  solving [ms]  total [ms]",
        f"  per-species {tm_p.construction*1e3:15.2f} {tm_p.solving*1e3:13.2f}"
        f" {wall_p*1e3:11.2f}",
        f"  coupled     {tm_c.construction*1e3:15.2f} {tm_c.solving*1e3:13.2f}"
        f" {wall_c*1e3:11.2f}",
        f"speedup (construction+solve): {speedup:.1f}x"
        f"   field agreement: |dY| {d_y:.3g}",
    ]
    emit("Multi-RHS species transport: coupled vs per-species", lines)

    assert d_y <= 1e-8
    # fixed per-solve overheads weigh more at smoke size
    assert speedup >= (1.2 if smoke else 3.0)


def test_coupled_momentum_predictor(solver, smoke):
    """The same refactor applied to the 3 momentum components."""
    s = solver
    rho_old = s.rho.copy()
    u0 = s.u.values.copy()
    from repro.fv import fvc_grad

    grad_p = fvc_grad(s.p)
    reps = 3 if smoke else 5

    def reset():
        s.u.values[:] = u0

    tm_c, _ = _time_stage(
        s, s._momentum_predictor_coupled, (rho_old, grad_p), reps, reset)
    u_coupled = s.u.values.copy()
    tm_p, _ = _time_stage(
        s, s._momentum_predictor_sequential, (rho_old, grad_p), reps, reset)
    u_seq = s.u.values.copy()
    s.u.values[:] = u0

    d_u = np.abs(u_coupled - u_seq).max()
    speedup = (tm_p.construction + tm_p.solving) / (
        tm_c.construction + tm_c.solving)
    lines = [
        f"{s.mesh.n_cells} cells, 3 momentum components",
        f"per-species {1e3*(tm_p.construction+tm_p.solving):7.2f} ms   "
        f"coupled {1e3*(tm_c.construction+tm_c.solving):7.2f} ms   "
        f"speedup {speedup:.1f}x   |dU| {d_u:.3g}",
    ]
    emit("Multi-RHS momentum predictor: coupled vs per-component", lines)

    assert d_u <= 1e-8
    # only k=3 systems to amortize over: require rough parity (the
    # headline gate is the species block above)
    assert speedup >= 0.7
