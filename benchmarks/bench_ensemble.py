"""Ensemble orchestration bench: N solver instances, one process.

The orchestration layer's claims, measured:

* an 8-instance parameter sweep (per-instance setting overlays through
  one ``SolverSettings`` base) advances in a single process, each
  instance's fields matching an equivalently-configured standalone
  solver to <= 1e-12 (gated bitwise here),
* same-case instances share one mesh, mechanism, property evaluator
  and equation workspace by identity, and the deep-walked ensemble
  memory footprint stays under 0.5x of N independent solvers (gated),
* every exchanged byte is ledgered: the per-instance cost table
  aggregates step timings, chemistry backend work, conduit traffic
  (attributed to the sending instance) and a decomposed member's
  internal halo/allreduce totals, priced by the same alpha-beta model
  as the strong-scaling bench.

Run:  pytest benchmarks/bench_ensemble.py -q [--smoke]
"""

import numpy as np

from repro.core import DeepFlameSolver, SolverSettings, build_tgv_case
from repro.orchestrate import Ensemble
from repro.runtime import SUNWAY

from .conftest import emit

N_INSTANCES = 8


def _build(n):
    return lambda: build_tgv_case(n=n)


def test_ensemble_sweep(smoke):
    """8-instance tolerance sweep: shared caches, standalone match,
    memory ratio and the ledgered cost table."""
    n = 6 if smoke else 12
    steps = 2 if smoke else 4
    dt = 1e-7
    base = SolverSettings(n_correctors=1)
    values = [10.0 ** -(6 + (i % 4)) for i in range(N_INSTANCES)]

    ens = Ensemble.sweep(_build(n), base, "scalar_controls.tolerance",
                         values, name="sw")
    ens.run(steps, dt)

    # -- shared-cache identity ----------------------------------------
    first = ens[0].solver
    for inst in list(ens)[1:]:
        assert inst.solver.mesh is first.mesh
        assert inst.solver.mech is first.mech
        assert inst.solver.properties is first.properties
        assert inst.solver._ws is first._ws

    # -- per-instance match vs an equivalent standalone solver --------
    worst = 0.0
    for pick in (0, N_INSTANCES - 1):
        solo = DeepFlameSolver.from_settings(
            _build(n)(), base.overlay(
                **{"scalar_controls.tolerance": values[pick]}))
        solo.run(steps, dt)
        for name, expected in (("y", solo.y), ("h", solo.h),
                               ("p", solo.p.values), ("T",
                               solo.props.temperature)):
            diff = float(np.max(np.abs(ens[pick].field(name) - expected)))
            worst = max(worst, diff)
    assert worst <= 1e-12

    # -- memory: ensemble vs N independent solvers --------------------
    mem = ens.memory_report()
    assert mem["ratio"] < 0.5

    report = ens.cost_report()
    lines = [
        f"{N_INSTANCES} instances x {steps} steps, {n}^3 cells, "
        f"sweep over scalar tolerance {values[0]:g}..{values[3]:g}",
        f"standalone-solver match: max |delta| = {worst:.1e} "
        f"(gate 1e-12)",
        f"memory: {mem['ensemble_bytes']/1e6:.2f} MB ensemble vs "
        f"{mem['independent_bytes']/1e6:.2f} MB independent "
        f"(ratio {mem['ratio']:.2f}, gate 0.5)",
        "",
        *report.table(),
    ]
    emit("Ensemble orchestration: 8-instance sweep", lines)


def test_ensemble_coupled_pair(smoke):
    """Macro/micro coupled pair: port traffic through the ledgered
    fabric, a decomposed member's internal ledger, alpha-beta price."""
    n = 6 if smoke else 10
    steps = 2 if smoke else 4
    dt = 1e-7
    base = SolverSettings(n_correctors=1)

    ens = Ensemble(_build(n), base)
    macro = ens.add_instance("macro")
    micro = ens.add_instance(
        "micro", overrides={"ranks": 2, "chemistry": "direct"})
    ens.connect("macro.t_out", "micro.t_in")
    received = []
    macro.post_step.append(
        lambda i: i.send("t_out", [i.solver.props.temperature.max()]))
    micro.pre_step.append(lambda i: received.append(i.receive("t_in")))
    ens.run(steps, dt)

    # forward coupling arrives within the same superstep
    assert all(r is not None for r in received)

    report = ens.cost_report()
    by_name = {c.name: c for c in report.instances}
    assert by_name["macro"].port_messages == steps
    assert by_name["micro"].internal_comm["messages"] > 0
    assert by_name["micro"].chemistry_work > 0
    priced = report.price(SUNWAY)
    assert np.isfinite(priced["total_s"]) and priced["total_s"] > 0

    lines = [
        f"macro (serial) -> micro (2-rank decomposed, direct "
        f"chemistry), {steps} supersteps, {n}^3 cells",
        *report.table(),
        "",
        f"alpha-beta price on Sunway: fabric "
        f"{priced['fabric']['total_s']:.3e} s, internal(micro) "
        f"{priced['internal']['micro']['total_s']:.3e} s",
    ]
    emit("Ensemble orchestration: coupled macro/micro pair", lines)
