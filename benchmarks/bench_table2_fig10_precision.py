"""Table 2 + Fig. 10: accuracy of Float and Mixed-FP16 inference vs.
the direct-integration reference.

The paper reports, over a 1-D temperature profile: Float avg/max
relative error 0.28 %/1.49 % (abs 1.91/62.2 K), Mixed-FP16
0.29 %/1.51 % (1.96/64.2 K).  We reproduce the experiment: every
profile state advanced one CFD step by (a) the stiff BDF reference
('Cantara'), (b) the ODENet at fp32 + fp32 GeLU table ('Float'),
(c) the ODENet at fp16 + fp16 table ('Mixed-FP16'), then temperatures
are recovered from the constant-(h,p) states and compared."""

import numpy as np

from repro.thermo import RealFluidMixture

from .conftest import emit


def _temperature_after(mech, rf, flame, y_new):
    """T from (h, p, Y_new) at constant enthalpy (operator splitting)."""
    h = rf.h_mass(flame["T"], flame["p"], flame["Y"])
    return rf.temperature_from_h(h, flame["p"], y_new, t_guess=flame["T"])


def test_table2_fig10_precision(benchmark, mech, flame_manifold,
                                reference_advance, trained_odenet):
    rf = RealFluidMixture(mech)
    flame = flame_manifold
    dt = reference_advance["dt"]
    t_ref = _temperature_after(mech, rf, flame, reference_advance["Y"])

    engines = {
        "Float": trained_odenet.make_engine(precision="fp32", gelu="table"),
        "Mixed-FP16": trained_odenet.make_engine(precision="fp16",
                                                 gelu="table"),
    }

    def run_float():
        return trained_odenet.advance(flame["T"], flame["p"], flame["Y"], dt,
                                      engine=engines["Float"])

    benchmark(run_float)

    lines = ["              rel.err avg   rel.err max   abs.err avg   abs.err max"]
    results = {}
    for name, eng in engines.items():
        y_new = trained_odenet.advance(flame["T"], flame["p"], flame["Y"],
                                       dt, engine=eng)
        t_pred = _temperature_after(mech, rf, flame, y_new)
        rel = np.abs(t_pred - t_ref) / t_ref
        abse = np.abs(t_pred - t_ref)
        results[name] = (rel, abse, t_pred)
        lines.append(f"  {name:12s} {rel.mean()*100:8.3f} %  {rel.max()*100:9.3f} %"
                     f"  {abse.mean():10.2f} K  {abse.max():10.2f} K")

    # Fig. 10: the temperature profile itself
    lines.append("Fig. 10 profile (x/L0, T_ref, T_float, T_fp16):")
    for i in range(0, flame["x"].size, 6):
        lines.append(f"  {flame['x'][i]:5.2f}  {t_ref[i]:8.1f}"
                     f"  {results['Float'][2][i]:8.1f}"
                     f"  {results['Mixed-FP16'][2][i]:8.1f}")
    emit("Table 2 + Fig. 10: precision accuracy", lines)

    # Paper shape: errors at the few-percent level; fp16 ~ fp32.
    for name, (rel, abse, _) in results.items():
        assert rel.mean() < 0.05, name
        assert rel.max() < 0.25, name
    assert results["Mixed-FP16"][0].mean() < results["Float"][0].mean() * 3 + 1e-3
