"""Fig. 13: strong scaling.

(a) 19.3-billion-cell TGV on Sunway, 3,072 -> 98,304 nodes;
(b) 9.7-billion-cell system on Fugaku, 4,608 -> 73,728 nodes;
both in FP32 and mixed-FP16.

Paper anchors at max scale: Sunway 40.7 % (mixed) / 66.0 % (fp32)
efficiency, 522.9 / 299.3 PFlop/s; Fugaku 60.5 % / 72.7 %, 208.6 /
143.8 PFlop/s; ToS 2.7e-9 (Sunway) and 7.7e-9 (Fugaku) s/DoF/cycle.

With ``--executed`` the analytic sweep is complemented by an
**executed** strong-scaling row: the DeepFlame step actually runs
domain-decomposed over P subdomains (``repro.dist``), and the table
reports the *measured* per-step halo-exchange and allreduce ledger
next to the alpha-beta times the cost model charges for exactly those
volumes -- the communication pattern is exercised, not assumed.  The
overlap-comparison bench additionally runs the same step with
``krylov_variant="overlapped"`` / ``overlap_halo=True`` and prices the
two ledgers side by side: the overlap-tagged traffic is charged
``max(t_compute, t_comm)`` (:func:`repro.runtime.overlapped_phase_time`)
instead of the serial sum, and the fused/pipelined solvers cut the
per-step collective count, so the modeled strong-scaling efficiency at
8+ ranks improves.
With ``--parallel`` (next to ``--executed``) the decomposed step
additionally runs under the *shared-memory parallel runtime*
(``execution="parallel"``): each rank becomes a real worker process
exchanging halos through a :class:`repro.runtime.shm.SharedArena`, and
the table reports **measured** wall-clock speedup and efficiency next
to the Amdahl prediction derived from the serial step's own stage
timings.  The parallel step's fields and communication ledger must
match the serial (driver-executed) step exactly -- the speedup row is
only meaningful because the answer is provably the same."""

import os
import time

import numpy as np
import pytest

from repro.runtime import (
    FUGAKU,
    SUNWAY,
    OptimizationConfig,
    allreduce_time,
    halo_exchange_time,
    overlapped_phase_time,
    strong_scaling,
    tgv_workload,
)

from .conftest import emit


def _series_lines(series, paper_last_eff):
    lines = []
    for p in series.points:
        lines.append(f"  {p.nodes:6d} nodes  loop {p.loop_time:8.3f} s  "
                     f"{p.pflops:7.1f} PF  eff {p.efficiency*100:5.1f} %  "
                     f"ToS {p.time_to_solution:.2e}")
    lines.append(f"  (paper efficiency at max scale: {paper_last_eff*100:.1f} %)")
    return lines


def test_fig13a_sunway_strong(benchmark):
    wl = tgv_workload(19_327_352_832)
    nodes = [3072, 6144, 12288, 24576, 49152, 98304]
    s16 = benchmark(strong_scaling, SUNWAY, wl, nodes)
    s32 = strong_scaling(SUNWAY, wl, nodes,
                         OptimizationConfig.optimized(mixed_precision=False))
    lines = ["Sunway, 19.3 B cells, mixed-FP16:"]
    lines += _series_lines(s16, 0.407)
    lines += ["Sunway, FP32:"]
    lines += _series_lines(s32, 0.660)
    assert abs(s16.efficiencies()[-1] - 0.407) < 0.08
    assert abs(s32.efficiencies()[-1] - 0.660) < 0.09
    # mixed precision remains faster despite lower efficiency
    assert s16.points[-1].loop_time < s32.points[-1].loop_time
    emit("Fig. 13(a): Sunway strong scaling", lines)


def test_fig13b_fugaku_strong(benchmark):
    wl = tgv_workload(9_663_676_416)
    nodes = [4608, 9216, 18432, 36864, 73728]
    s16 = benchmark(strong_scaling, FUGAKU, wl, nodes)
    s32 = strong_scaling(FUGAKU, wl, nodes,
                         OptimizationConfig.optimized(mixed_precision=False))
    lines = ["Fugaku, 9.7 B cells, mixed-FP16:"]
    lines += _series_lines(s16, 0.605)
    lines += ["Fugaku, FP32:"]
    lines += _series_lines(s32, 0.727)
    assert abs(s16.efficiencies()[-1] - 0.605) < 0.08
    assert abs(s32.efficiencies()[-1] - 0.727) < 0.08
    emit("Fig. 13(b): Fugaku strong scaling", lines)


def test_fig13_executed_ledger(executed, smoke, mech):
    """Executed strong scaling: measured message/byte ledgers of real
    decomposed steps, priced with the same alpha-beta model the
    analytic sweep uses."""
    if not executed:
        pytest.skip("pass --executed to run the decomposed-execution bench")
    from repro.core import IdealGasProperties, NoChemistry, build_tgv_case
    from repro.dist import DecomposedSolver

    n = 8 if smoke else 12
    rank_counts = [2, 4] if smoke else [2, 4, 8]
    dt = 1e-8
    lines = [f"TGV {n}^3 cells, 1 executed step per rank count "
             "(alpha-beta times on Sunway's fabric)",
             "   P  cut-faces  msgs  halo KiB  allred  allred B  "
             "t_halo [us]  t_allred [us]"]
    per_p = {}
    for nparts in rank_counts:
        solver = DecomposedSolver(
            build_tgv_case(n=n, mech=mech), nparts,
            properties=IdealGasProperties(mech), chemistry=NoChemistry())
        solver.step(dt)   # warm-up: settle fields
        solver.step(dt)   # measured step
        comm = solver.last_comm
        stats = solver.decomp.stats()
        per_p[nparts] = comm

        # charge the *measured* volumes to the alpha-beta model
        msgs_per_rank = comm["messages"] / nparts
        bytes_per_msg = comm["bytes"] / comm["messages"]
        t_halo = halo_exchange_time(SUNWAY, msgs_per_rank, bytes_per_msg)
        t_ar = comm["allreduces"] * allreduce_time(
            SUNWAY, nparts, comm["allreduce_bytes"] / comm["allreduces"])
        lines.append(
            f"  {nparts:2d}  {stats['cut_faces']:9d}  "
            f"{comm['messages']:4d}  {comm['bytes']/1024:8.1f}  "
            f"{comm['allreduces']:6d}  {comm['allreduce_bytes']:8d}  "
            f"{t_halo*1e6:11.2f}  {t_ar*1e6:13.2f}")

        assert comm["messages"] > 0 and comm["bytes"] > 0
        assert comm["allreduces"] > 0 and comm["allreduce_bytes"] > 0
    # more ranks -> more part boundary -> more halo traffic
    halo_bytes = [per_p[p]["bytes"] for p in rank_counts]
    assert np.all(np.diff(halo_bytes) > 0)
    emit("Fig. 13 (executed): measured communication ledger", lines)


def test_fig13_parallel_measured(executed, parallel, smoke, mech):
    """Measured vs modeled strong scaling of the shared-memory runtime.

    Serial (driver-executed) and parallel (worker-process) runs of the
    same decomposed configuration with live direct chemistry; the
    modeled efficiency is the Amdahl bound from the serial step's own
    stage timings (chemistry + assembly + solving parallelize, the
    driver-side remainder does not).
    """
    if not (executed and parallel):
        pytest.skip("pass --executed --parallel to run the shared-memory "
                    "runtime bench")
    from repro.core import IdealGasProperties, SolverSettings, build_tgv_case
    from repro.dist import DecomposedSolver

    n = 6 if smoke else 8
    worker_counts = [2] if smoke else [2, 4]
    n_steps = 2 if smoke else 3
    dt = 1e-8
    cpus = len(os.sched_getaffinity(0))
    lines = [f"TGV {n}^3 cells, live direct chemistry, {n_steps} measured "
             f"steps per config ({cpus} CPUs visible)",
             "   W  t_serial/step  t_parallel/step  speedup  "
             "eff meas  eff model  worst |dT|"]
    for workers in worker_counts:
        settings = SolverSettings(ranks=workers, chemistry="direct")

        def build(execution):
            return DecomposedSolver.from_settings(
                build_tgv_case(n=n, mech=mech),
                settings.overlay(execution=execution),
                properties=IdealGasProperties(mech))

        serial = build("serial")
        serial.step(dt)  # warm-up
        t0 = time.perf_counter()
        for _ in range(n_steps):
            serial.step(dt)
        t_serial = (time.perf_counter() - t0) / n_steps
        tm = serial.last_timings
        # Amdahl bound from the serial step's own stage split: rank
        # work (chemistry/properties, assembly, solves) parallelizes,
        # the driver remainder does not
        f_par = (tm.dnn + tm.construction + tm.solving) / tm.total
        modeled = 1.0 / ((1.0 - f_par) + f_par / workers)

        par = build("parallel")
        par.step(dt)  # warm-up (pool is already live from construction)
        t0 = time.perf_counter()
        for _ in range(n_steps):
            par.step(dt)
        t_parallel = (time.perf_counter() - t0) / n_steps

        # the speedup row is only meaningful because the answer is
        # provably the same: ledger and fields must match the serial run
        assert serial.last_comm == par.last_comm
        worst = float(np.abs(serial.gather("T") - par.gather("T")).max())
        assert worst <= 1e-8
        assert serial.comm.ledger.totals() == par.comm.ledger.totals()

        speedup = t_serial / t_parallel
        lines.append(
            f"  {workers:2d}  {t_serial*1e3:13.2f}  {t_parallel*1e3:15.2f}  "
            f"{speedup:7.2f}  {speedup/workers*100:7.1f} %  "
            f"{modeled/workers*100:8.1f} %  {worst:.2e}")
        if cpus >= workers:
            # the issue's wall-clock gate -- only enforceable when the
            # host actually has a core per worker
            if workers >= 4:
                assert speedup >= 2.0, (workers, speedup)
        else:
            lines.append(f"      (speedup gate skipped: {cpus} CPUs "
                         f"< {workers} workers)")
        par.close()
    emit("Fig. 13 (executed): shared-memory parallel runtime", lines)


def _price_step(comm: dict, flops: int, nparts: int,
                overlapped: bool) -> float:
    """Alpha-beta price of one measured step on Sunway's fabric.

    The overlap-tagged subset of the ledger (nonblocking halo posts,
    fused ``iallreduce``) hides behind the step's compute via
    :func:`overlapped_phase_time`; everything else is charged as the
    serial sum, exactly as the synchronous model does.
    """
    rate = SUNWAY.peak_fp64_node / SUNWAY.processes_per_node
    t_comp = flops / nparts / rate

    def halo_price(msgs: int, nbytes: int) -> float:
        if msgs == 0:
            return 0.0
        return halo_exchange_time(SUNWAY, msgs / nparts, nbytes / msgs)

    def allred_price(count: int) -> float:
        if count == 0:
            return 0.0
        payload = comm["allreduce_bytes"] / comm["allreduces"]
        return count * allreduce_time(SUNWAY, nparts, payload)

    t_halo_ovl = halo_price(comm["overlap_messages"], comm["overlap_bytes"])
    t_halo_blk = halo_price(comm["messages"] - comm["overlap_messages"],
                            comm["bytes"] - comm["overlap_bytes"])
    t_ar_ovl = allred_price(comm["overlap_allreduces"])
    t_ar_blk = allred_price(comm["allreduces"] - comm["overlap_allreduces"])
    if overlapped:
        return t_halo_blk + t_ar_blk + \
            overlapped_phase_time(t_comp, t_halo_ovl + t_ar_ovl)
    return t_comp + t_halo_blk + t_halo_ovl + t_ar_blk + t_ar_ovl


def test_fig13_overlap_comparison(executed, smoke, mech):
    """Synchronous vs communication-overlapped distributed Krylov:
    measured ledgers of both execution modes, priced side by side."""
    if not executed:
        pytest.skip("pass --executed to run the decomposed-execution bench")
    from repro.core import (
        IdealGasProperties,
        NoChemistry,
        SolverSettings,
        build_tgv_case,
    )
    from repro.dist import DecomposedSolver

    n = 8 if smoke else 12
    rank_counts = [2, 4, 8] if smoke else [2, 4, 8, 16]
    dt = 1e-8
    lines = [f"TGV {n}^3 cells, 1 measured step per rank count "
             "(alpha-beta times on Sunway's fabric)",
             "   P  variant       allred  allred/it  overlap-msgs  "
             "t_model [us]  efficiency"]
    eff = {"synchronous": [], "overlapped": []}
    per_it = {}
    for nparts in rank_counts:
        for variant in ("synchronous", "overlapped"):
            settings = SolverSettings(
                ranks=nparts, krylov_variant=variant,
                overlap_halo=(variant == "overlapped"))
            solver = DecomposedSolver(
                build_tgv_case(n=n, mech=mech),
                properties=IdealGasProperties(mech),
                chemistry=NoChemistry(), settings=settings)
            solver.step(dt)   # warm-up: settle fields
            solver.step(dt)   # measured step
            comm = solver.last_comm
            iters = max(solver.last_diag.solver_iterations, 1)
            t_model = _price_step(comm, solver.last_diag.solver_flops,
                                  nparts, overlapped=(variant == "overlapped"))
            series = eff[variant]
            series.append((nparts, t_model))
            p0, t0 = series[0]
            e = (t0 * p0) / (t_model * nparts)
            per_it[(nparts, variant)] = comm["allreduces"] / iters
            lines.append(
                f"  {nparts:2d}  {variant:12s}  {comm['allreduces']:5d}  "
                f"{comm['allreduces'] / iters:9.2f}  "
                f"{comm['overlap_messages']:12d}  {t_model*1e6:12.2f}  "
                f"{e*100:9.1f} %")

            if variant == "overlapped":
                # the nonblocking spellings actually ran, and the
                # fused/pipelined solvers cut the collective count
                assert comm["overlap_messages"] > 0
                assert comm["overlap_allreduces"] > 0
                assert per_it[(nparts, "overlapped")] \
                    < per_it[(nparts, "synchronous")]
            else:
                assert comm["overlap_messages"] == 0
                assert comm["overlap_allreduces"] == 0

    # at scale (8+ ranks), overlap + fewer collectives must translate
    # into better modeled strong-scaling efficiency
    for i, nparts in enumerate(rank_counts):
        if nparts < 8:
            continue
        p0, t0 = eff["synchronous"][0]
        e_sync = (t0 * p0) / (eff["synchronous"][i][1] * nparts)
        p0, t0 = eff["overlapped"][0]
        e_ovl = (t0 * p0) / (eff["overlapped"][i][1] * nparts)
        assert e_ovl > e_sync, (nparts, e_sync, e_ovl)
    emit("Fig. 13 (executed): synchronous vs overlapped Krylov", lines)
