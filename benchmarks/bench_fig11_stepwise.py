"""Fig. 11: step-by-step optimization gains on Sunway / Fugaku / LS.

Two layers of reproduction:

1. **measured** -- the real optimization knobs on the real kernels at
   laptop scale: exact-GeLU fp32 inference vs tabulated fp16 on the
   true MLP shapes, and serial vs block-structured sparse kernels;
2. **modelled** -- the calibrated machine model's cumulative stage
   table (BL -> MP -> Tabulation -> Arch -> MDAR -> PS -> PC) for the
   25,165,824-cell TGV of the paper's figure, with component
   breakdowns (DNN / Construction / Solving / Other).

Paper totals to reproduce: 7.3x (Sunway), 3.6x (Fugaku), 8.8x (LS)."""

import numpy as np

from repro.dnn import MLP, InferenceEngine
from repro.runtime import (
    FUGAKU,
    LS_PILOT,
    SUNWAY,
    OptimizationConfig,
    PerfModel,
    tgv_workload,
)

from .conftest import emit


def test_fig11_measured_dnn_knobs(benchmark):
    """Local measurement: optimized inference path beats the baseline
    path on the same hardware (here: this CPU)."""
    net = MLP((20, 256, 512, 256, 17), seed=0)  # scaled-down ODENet
    x = np.random.default_rng(0).normal(size=(4096, 20))

    base = InferenceEngine(net, precision="fp32", gelu="exact")
    opt = InferenceEngine(net, precision="fp32", gelu="table")

    benchmark(opt.run, x)
    t_opt = benchmark.stats["mean"]
    import time

    t0 = time.perf_counter()
    base.run(x)
    t_base = time.perf_counter() - t0
    lines = [
        f"measured on this host, batch 4096, net (20,256,512,256,17):",
        f"  fp32 + exact GeLU : {t_base*1e3:8.2f} ms",
        f"  fp32 + GeLU table : {t_opt*1e3:8.2f} ms  "
        f"(speedup {t_base/t_opt:.2f}x)",
    ]
    # The GeLU table must not be slower (transcendental elimination).
    assert t_opt < t_base * 1.15
    emit("Fig. 11 (measured): GeLU tabulation on host", lines)


def test_fig11_modelled_stage_table(benchmark):
    wl = tgv_workload(25_165_824)
    targets = {"Sunway": 7.3, "Fugaku": 3.6, "LS": 8.8}
    lines = []
    for machine in (SUNWAY, FUGAKU, LS_PILOT):
        model = PerfModel(machine)
        lines.append(f"{machine.name} (64 nodes, 25.2 M cells):")
        t0 = None
        for name, cfg in OptimizationConfig.optimized().stage_sequence():
            bd = model.loop_breakdown(wl, 64, cfg)
            t0 = t0 or bd.total
            lines.append(
                f"  {name:10s} loop {bd.total:8.3f} s  ({t0/bd.total:4.2f}x)"
                f"  DNN {bd.dnn:7.3f}  Constr {bd.construction:7.3f}"
                f"  Solve {bd.solving:7.3f}  Other {bd.other:7.3f}")
        speedup = t0 / bd.total
        lines.append(f"  total speedup {speedup:.2f}x "
                     f"(paper: {targets[machine.name]}x)")
        assert abs(speedup - targets[machine.name]) / targets[machine.name] < 0.3
        # post-optimization module shares (Sec. 5.2.3)
        dnn_share = bd.dnn / bd.total
        lines.append(f"  post-opt DNN share {dnn_share*100:.1f} % "
                     f"(paper: 64.9/87.4/68.9 %)")
    benchmark(lambda: PerfModel(SUNWAY).loop_breakdown(
        wl, 64, OptimizationConfig.optimized()))
    emit("Fig. 11 (modelled): step-by-step stages", lines)
