"""Shared benchmark fixtures and result-table helpers.

Every bench prints a paper-style table AND appends it to
``benchmarks/results/summary.txt`` so the regenerated rows survive
pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="shrink benchmark problem sizes for quick CI smoke runs",
    )
    parser.addoption(
        "--executed", action="store_true", default=False,
        help="also run the executed (domain-decomposed, in-process) "
             "communication benches next to the analytic models",
    )
    parser.addoption(
        "--parallel", action="store_true", default=False,
        help="also run the shared-memory parallel-execution benches "
             "(real worker processes; pair with --executed)",
    )
    parser.addoption(
        "--backend", action="store", default="numpy",
        help="array backend the kernel benches run through "
             "(a repro.backend registry name; default: numpy)",
    )


#: session-active backend/dtype context stamped on every emitted table
#: (callers override per table where a bench runs another dtype)
_ACTIVE = {"backend": "numpy", "dtype": "fp64"}


def pytest_configure(config):
    _ACTIVE["backend"] = str(config.getoption("--backend", "numpy"))


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """True when the run was launched with ``--smoke``."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def executed(request) -> bool:
    """True when the run was launched with ``--executed``."""
    return bool(request.config.getoption("--executed"))


@pytest.fixture(scope="session")
def parallel(request) -> bool:
    """True when the run was launched with ``--parallel``."""
    return bool(request.config.getoption("--parallel"))


@pytest.fixture(scope="session")
def bench_backend(request):
    """The ArrayBackend selected with ``--backend``.

    Skips the requesting bench when the backend is registered but its
    optional dependency is missing on this host (CuPy, torch,
    array-api-strict).
    """
    from repro.backend import get_backend

    name = request.config.getoption("--backend")
    try:
        return get_backend(name)
    except ValueError as exc:
        pytest.skip(str(exc))


def emit(title: str, lines: list[str], backend: str | None = None,
         dtype: str | None = None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    Every block records the array backend and dtype it was measured
    under (the session ``--backend`` selection unless overridden), so
    regenerated ``summary.txt`` rows from different legs stay
    distinguishable.
    """
    ctx = (f"backend={backend or _ACTIVE['backend']} "
           f"dtype={dtype or _ACTIVE['dtype']}")
    block = "\n".join([f"== {title} [{ctx}] ==", *lines, ""])
    print("\n" + block)
    with open(RESULTS_DIR / "summary.txt", "a") as f:
        f.write(block + "\n")


@pytest.fixture(scope="session")
def mech():
    from repro.chemistry import load_mechanism

    return load_mechanism()


@pytest.fixture(scope="session")
def flame_manifold(mech):
    """The Fig.-10-style 1-D profile: mixing line with a hot reacting
    core, plus matched training data for the surrogate."""
    from repro.chemistry import mixture_line

    n = 48
    pressure = 10e6
    t_mix, y_mix = mixture_line(mech, n, pressure)
    x = np.linspace(0.0, 1.0, n)
    # hot products core at x ~ 0.5 (diffusion-flame temperature peak)
    t_profile = t_mix + 3600.0 * np.exp(-((x - 0.5) / 0.16) ** 2)
    y = y_mix.copy()
    idx = mech.species_index
    burn = np.exp(-((x - 0.5) / 0.16) ** 2)
    for i in range(n):
        f, o = y[i, idx["CH4"]], y[i, idx["O2"]]
        wf = mech.molecular_weights[idx["CH4"]]
        wo = mech.molecular_weights[idx["O2"]]
        react = burn[i] * min(f / wf, o / (2 * wo))
        y[i, idx["CH4"]] -= react * wf
        y[i, idx["O2"]] -= 2 * react * wo
        y[i, idx["CO2"]] += react * mech.molecular_weights[idx["CO2"]]
        y[i, idx["H2O"]] += 2 * react * mech.molecular_weights[idx["H2O"]]
    y = np.clip(y, 0, None)
    y /= y.sum(axis=1, keepdims=True)
    return {"x": x, "T": t_profile, "Y": y, "p": pressure}


@pytest.fixture(scope="session")
def reference_advance(mech, flame_manifold):
    """Direct BDF advance of every profile state over one CFD step
    (the paper's 'Cantara' reference)."""
    from repro.core import DirectChemistry

    dt = 1e-6
    chem = DirectChemistry(mech, rtol=1e-8, atol=1e-11)
    t_new, y_new = chem.advance(flame_manifold["T"], flame_manifold["p"],
                                flame_manifold["Y"], dt)
    return {"dt": dt, "T": t_new, "Y": y_new, "stats": chem.last_stats}


@pytest.fixture(scope="session")
def trained_odenet(mech, flame_manifold, reference_advance):
    """ODENet trained on the flame-manifold neighbourhood (small
    architecture -- the accuracy experiment is architecture-insensitive
    at this scale; see DESIGN.md)."""
    from repro.core import DirectChemistry
    from repro.dnn import ODENet

    rng = np.random.default_rng(0)
    dt = reference_advance["dt"]
    base_t = flame_manifold["T"]
    base_y = flame_manifold["Y"]
    ts, ys = [base_t], [base_y]
    for _ in range(5):
        jitter_t = base_t * (1 + rng.normal(0, 0.02, base_t.shape))
        jitter_y = np.clip(base_y * (1 + rng.normal(0, 0.05, base_y.shape)),
                           0, None)
        jitter_y /= jitter_y.sum(axis=1, keepdims=True)
        ts.append(jitter_t)
        ys.append(jitter_y)
    t_all = np.concatenate(ts)
    y_all = np.concatenate(ys)
    chem = DirectChemistry(mech, rtol=1e-8, atol=1e-11)
    t_adv, y_adv = chem.advance(t_all, flame_manifold["p"], y_all, dt)
    net = ODENet(mech, hidden=(96, 96), seed=0)
    net.fit(t_all, np.full(t_all.shape, flame_manifold["p"]), y_all,
            y_adv - y_all, dt=dt, epochs=400, lr=2e-3, batch_size=32)
    return net


@pytest.fixture(scope="session")
def trained_prnet(mech):
    from repro.dnn import PRNet
    from repro.thermo import RealFluidMixture

    rf = RealFluidMixture(mech)
    net = PRNet(mech, density_hidden=(64, 32), transport_hidden=(64, 32))
    net.fit_from_manifold(rf, 10e6, epochs=300)
    net._rf = rf
    return net
