"""Fig. 6 + Sec. 3.1/3.2.3: decomposition, renumbering and balance
statistics on the real (synthetic) rocket system.

Paper anchors: 36 % fewer non-zero blocks (106 -> 68), off-diagonal
non-zeros 16.24 % -> 1.63 % at t=16 threads; process load balance
mean 440k / max 459k / sigma 3222; 15 average neighbours; thread nnz
mean 241,634 / max 246,198.  We reproduce the *direction and relative
magnitude* of every statistic at bench scale."""

import numpy as np

from repro.mesh import (
    build_rocket_mesh,
    cell_graph_from_mesh,
    partition_renumbering,
)
from repro.partition import (
    balance_stats,
    block_occupancy,
    decompose_two_level,
    offdiag_fraction,
    partition_graph,
)
from repro.sparse import build_block_converter
from tests.conftest import make_laplacian_ldu

from .conftest import emit


def test_fig6_renumbering_statistics(benchmark):
    mesh = build_rocket_mesh(nr=10, ntheta_per_sector=12, nz=36, n_sectors=2)
    graph = cell_graph_from_mesh(mesh)
    t = 16

    mem_ml = benchmark(partition_graph, graph, t)
    # "naive": strided blocks of a spatially-shuffled labelling (no
    # locality, which is what a generic unstructured numbering gives)
    rng = np.random.default_rng(0)
    perm = rng.permutation(graph.n_vertices)
    from repro.mesh.graph import CellGraph

    src = np.repeat(np.arange(graph.n_vertices), np.diff(graph.xadj))
    keep = src < graph.adjncy
    shuffled = CellGraph.from_edges(graph.n_vertices, perm[src[keep]],
                                    perm[graph.adjncy[keep]])
    mem_naive = partition_graph(shuffled, t, method="strided")

    f_ml = offdiag_fraction(graph, mem_ml)
    f_naive = offdiag_fraction(shuffled, mem_naive)
    occ_ml = block_occupancy(graph, mem_ml)
    occ_naive = block_occupancy(shuffled, mem_naive)

    lines = [
        f"threads t = {t}, cells = {graph.n_vertices}",
        f"off-diagonal nnz fraction: naive {f_naive*100:6.2f} %  ->  "
        f"SCOTCH-like+CM {f_ml*100:6.2f} %   (paper: 16.24 % -> 1.63 %)",
        f"non-zero blocks of {t}x{t}: naive {occ_naive}  ->  optimized "
        f"{occ_ml}   (paper: 106 -> 68)",
    ]
    assert f_ml < f_naive / 2
    assert occ_ml < occ_naive

    # Block-CSR nnz balance per thread (Sec. 3.2.3)
    perm2 = partition_renumbering(graph, mem_ml)
    mesh2 = mesh.renumbered(perm2)
    ldu = make_laplacian_ldu(mesh2)
    conv = build_block_converter(ldu, mem_ml[np.argsort(perm2)])
    blk = conv.convert(ldu)
    nnz = blk.nnz_per_thread()
    lines.append(f"nnz/thread: mean {nnz.mean():.0f} max {nnz.max()} "
                 f"std {nnz.std():.1f}   (paper: mean 241,634 max 246,198 "
                 f"std 3,303)")
    assert nnz.max() / nnz.mean() < 1.2
    emit("Fig. 6 + Sec. 3.2: renumbering statistics", lines)


def test_sec31_two_level_load_balance(benchmark):
    mesh = build_rocket_mesh(nr=8, ntheta_per_sector=10, nz=30, n_sectors=2)

    dec = benchmark(decompose_two_level, mesh, 8, 4)
    stats = balance_stats(dec.process_membership)
    lines = [
        f"cells/process: mean {stats.mean:.0f} max {stats.max:.0f} "
        f"std {stats.std:.1f}  (paper: 440k / 459k / 3222.8)",
        f"relative imbalance max/mean-1 = {stats.imbalance*100:.2f} %  "
        f"(paper: 4.3 %)",
        f"avg neighbours/process = {dec.avg_neighbours():.1f}  (paper: 15)",
        f"avg shared faces/pair  = {dec.avg_shared_faces_per_pair():.0f}  "
        f"(paper: 2855)",
    ]
    assert stats.imbalance < 0.10
    assert 3.0 <= dec.avg_neighbours() <= 16.0
    emit("Sec. 3.1: two-level decomposition balance", lines)
