"""Sec. 3.2.2 / 3.3.1 / 3.3.2 kernel-level claims, measured.

* format conversion: LDU -> block-CSR value update costs about one
  SpMV (paper: "comparable to that of a single SpMV"),
* mixed precision: FP16 linear layers gain ~peak-ratio speedups (the
  paper's 4.24x/2.13x are hardware numbers; here we verify the model's
  accounting and the numerical-equivalence side),
* GeLU tabulation: table evaluation avoids tanh and keeps errors at
  the 1e-6 level inside the table range,
* block-parallel Gauss-Seidel convergence penalty (<0.1 %/iteration
  claim, Sec. 3.2.3)."""

import time

import numpy as np

from repro.dnn import GeLUTable, gelu_exact
from repro.mesh import (
    build_rocket_mesh,
    cell_graph_from_mesh,
    partition_renumbering,
)
from repro.partition import partition_graph
from repro.sparse import SmootherStats, build_block_converter, spmv_ldu
from repro.runtime import FUGAKU, SUNWAY
from tests.conftest import make_laplacian_ldu

from .conftest import emit


def _block_setup(t=8, smoke=False):
    if smoke:
        mesh = build_rocket_mesh(nr=6, ntheta_per_sector=8, nz=12,
                                 n_sectors=1)
    else:
        mesh = build_rocket_mesh(nr=10, ntheta_per_sector=12, nz=36,
                                 n_sectors=2)
    g = cell_graph_from_mesh(mesh)
    mem = partition_graph(g, t)
    perm = partition_renumbering(g, mem)
    mesh2 = mesh.renumbered(perm)
    ldu = make_laplacian_ldu(mesh2)
    conv = build_block_converter(ldu, mem[np.argsort(perm)])
    return ldu, conv, conv.convert(ldu)


def test_sec322_conversion_cost_vs_spmv(benchmark, bench_backend, smoke):
    ldu, conv, blk = _block_setup(smoke=smoke)
    x = np.random.default_rng(0).random(ldu.n)
    # "numpy" runs the pre-shim LDU matvec (legacy IS the numpy
    # backend); any other selection times the generic Array-API body,
    # checked against the legacy result before timing
    be = None if bench_backend.name == "numpy" else bench_backend
    if be is not None:
        got = np.asarray(
            bench_backend.from_device(spmv_ldu(ldu, x, backend=be)))
        np.testing.assert_allclose(got, spmv_ldu(ldu, x),
                                   rtol=1e-12, atol=1e-12)

    def update():
        conv.update_values(blk, ldu)

    benchmark(update)
    t_update = benchmark.stats["mean"]
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        spmv_ldu(ldu, x, backend=be)
    t_spmv = (time.perf_counter() - t0) / reps
    lines = [
        f"LDU->block value update: {t_update*1e6:9.1f} us",
        f"one LDU SpMV           : {t_spmv*1e6:9.1f} us",
        f"ratio                  : {t_update/t_spmv:6.2f}  "
        "(paper: 'comparable to a single SpMV')",
    ]
    assert t_update < 12.0 * t_spmv  # same order of magnitude
    emit("Sec. 3.2.2: format conversion cost", lines,
         backend=bench_backend.name)


def test_sec323_block_gs_penalty(benchmark, smoke):
    ldu, conv, blk = _block_setup(smoke=smoke)
    stats = SmootherStats(ldu, blk)
    b = np.random.default_rng(1).random(ldu.n)

    benchmark(lambda: stats.residual_histories(b, np.zeros_like(b), 3))
    hs, hb = stats.residual_histories(b, np.zeros_like(b), 12)
    per_sweep_penalty = (hb[-1] / hs[-1]) ** (1.0 / 12.0) - 1.0
    lines = [
        f"serial GS residual after 12 sweeps: {hs[-1]:.4e}",
        f"block  GS residual after 12 sweeps: {hb[-1]:.4e}",
        f"per-sweep convergence penalty: {per_sweep_penalty*100:+.3f} %  "
        "(paper: <0.1 % residual increase/iteration)",
    ]
    assert hb[-1] < hb[0]  # still converges
    assert per_sweep_penalty < 0.05
    # the GS sweep kernel is not shimmed (host fallback); always numpy
    emit("Sec. 3.2.3: block-parallel GS penalty", lines, backend="numpy")


def test_sec331_mixed_precision_accounting(benchmark):
    """Machine-peak accounting of the FP16 linear-layer gains."""
    ratio_sw = SUNWAY.peak_fp16_node / SUNWAY.peak_fp32_node
    ratio_fg = FUGAKU.peak_fp16_node / FUGAKU.peak_fp32_node
    from repro.runtime.perf_model import CALIBRATION

    gain_sw = ratio_sw * CALIBRATION["Sunway"]["fp16_lin_bonus"]
    gain_fg = ratio_fg * CALIBRATION["Fugaku"]["fp16_lin_bonus"]
    lines = [
        f"Sunway linear-layer fp16 gain: {gain_sw:.2f}x (paper: 4.24x)",
        f"Fugaku linear-layer fp16 gain: {gain_fg:.2f}x (paper: 2.13x)",
    ]
    assert abs(gain_sw - 4.24) < 0.2
    assert abs(gain_fg - 2.13) < 0.1

    # numerical equivalence side (Sec. 5.1 support): fp16 matmul on
    # z-scored data stays within ~1e-2 relative
    from repro.dnn import mixed_linear_forward

    rng = np.random.default_rng(2)
    x = rng.normal(size=(512, 64))
    w = rng.normal(size=(64, 64)) * 0.15
    bvec = rng.normal(size=64) * 0.1
    exact = x @ w.T + bvec

    out = benchmark(mixed_linear_forward, x, w, bvec)
    rel = np.abs(out - exact).max() / np.abs(exact).max()
    lines.append(f"fp16 linear relative error on z-scored data: {rel:.2e}")
    assert rel < 2e-2
    # fp16 simulation is host-only (numpy has the only fp16 dtype here)
    emit("Sec. 3.3.1: mixed precision", lines, backend="numpy",
         dtype="fp16")


def test_sec332_gelu_tabulation(benchmark, bench_backend, smoke):
    n = 100_000 if smoke else 1_000_000
    x = np.random.default_rng(3).normal(size=n).astype(np.float32)
    tab = GeLUTable(precision="fp32")

    # legacy table lookup on "numpy", the shimmed apply elsewhere --
    # with a one-shot parity check of the shimmed path either way
    np.testing.assert_array_equal(
        np.asarray(bench_backend.from_device(
            tab.apply_backend(x, backend=bench_backend))), tab(x))
    if bench_backend.name == "numpy":
        benchmark(tab, x)
    else:
        benchmark(tab.apply_backend, x, backend=bench_backend)
    t_tab = benchmark.stats["mean"]
    t0 = time.perf_counter()
    gelu_exact(x)
    t_exact = time.perf_counter() - t0

    xs = np.linspace(-2.99, 2.99, 10_001 if smoke else 100_001)
    interior_err = np.abs(tab(xs).astype(np.float64) - gelu_exact(xs)).max()
    lines = [
        f"exact tanh GeLU, {n:.0e} elements: {t_exact*1e3:8.2f} ms",
        f"2nd-order table, {n:.0e} elements: {t_tab*1e3:8.2f} ms",
        f"table entries: {tab.n_entries} over [-3,3] at 0.01 "
        "(paper's construction)",
        f"max interior error: {interior_err:.2e}; tail-clamp error "
        f"{tab.max_error():.2e} (= the paper's own x<-3 -> 0 approximation)",
    ]
    assert interior_err < 1e-5
    assert tab.max_error() < 5e-3
    emit("Sec. 3.3.2: GeLU tabulation", lines,
         backend=bench_backend.name, dtype="fp32")
