"""Fig. 12: structured (TGV) vs unstructured (rocket) meshes on Fugaku.

Paper anchors: optimized speedups 3.58x vs 3.50x; weak scaling 94.9 %
vs 93.1 %; strong scaling 82.5 % vs 79.0 % at 16x processes; the
unstructured penalty comes from mild load imbalance (561k/567k cells
per process vs uniform 524k) and 15-vs-6 halo neighbours.

The measured layer quantifies the actual decomposition difference on
real box vs rocket graphs; the modelled layer produces the figure's
three panels."""

import numpy as np

from repro.mesh import build_box_mesh, build_rocket_mesh, cell_graph_from_mesh
from repro.partition import balance_stats, partition_graph
from repro.runtime import (
    FUGAKU,
    OptimizationConfig,
    PerfModel,
    strong_scaling,
    tgv_workload,
    weak_scaling,
)

from .conftest import emit


def test_fig12_measured_decomposition_gap(benchmark):
    box = cell_graph_from_mesh(build_box_mesh(16, 16, 12))
    rocket = cell_graph_from_mesh(
        build_rocket_mesh(nr=8, ntheta_per_sector=12, nz=32, n_sectors=2))

    mem_b = benchmark(partition_graph, box, 8)
    mem_r = partition_graph(rocket, 8)
    sb = balance_stats(mem_b)
    sr = balance_stats(mem_r)
    # neighbour counts per part
    def avg_nbrs(graph, mem):
        n_parts = mem.max() + 1
        nbrs = [set() for _ in range(n_parts)]
        src = np.repeat(np.arange(graph.n_vertices), np.diff(graph.xadj))
        for a, b in zip(mem[src], mem[graph.adjncy]):
            if a != b:
                nbrs[a].add(b)
        return np.mean([len(s) for s in nbrs])

    nb_b, nb_r = avg_nbrs(box, mem_b), avg_nbrs(rocket, mem_r)
    lines = [
        f"structured   imbalance {sb.imbalance*100:5.2f} %  avg nbrs {nb_b:.1f}",
        f"unstructured imbalance {sr.imbalance*100:5.2f} %  avg nbrs {nb_r:.1f}",
        "(paper: uniform vs 561k/567k ~ 1 % imbalance; 6 vs 15 nbrs;",
        " our bench sector is geometrically thin, so neighbour counts",
        " are small for both -- the imbalance gap is the robust signal)",
    ]
    assert 1.0 <= nb_b <= 16.0 and 1.0 <= nb_r <= 16.0
    emit("Fig. 12 (measured): structured vs unstructured decomposition", lines)


def test_fig12_modelled_panels(benchmark):
    model = PerfModel(FUGAKU)
    wl_s = tgv_workload(25_165_824)
    wl_u = tgv_workload(25_165_824, unstructured=True, load_imbalance=0.011)

    lines = ["(a) step-by-step totals:"]
    speedups = {}
    for tag, wl in (("structured", wl_s), ("unstructured", wl_u)):
        t_base = model.report(wl, 48, OptimizationConfig.baseline()).loop_time
        t_opt = model.report(wl, 48, OptimizationConfig.optimized()).loop_time
        speedups[tag] = t_base / t_opt
        lines.append(f"  {tag:13s} {t_base:7.2f} -> {t_opt:7.2f} s  "
                     f"({speedups[tag]:.2f}x)")
    lines.append("  (paper: 3.58x vs 3.50x)")
    assert speedups["structured"] >= speedups["unstructured"] * 0.98

    nodes = [576, 1152, 2304, 4608, 9216]  # 16x span
    lines.append("(b) weak scaling efficiency at 16x:")
    effs = {}
    for tag, wl in (("structured", wl_s), ("unstructured", wl_u)):
        eff = weak_scaling(FUGAKU, wl, nodes).efficiencies()[-1]
        effs[tag] = eff
        lines.append(f"  {tag:13s} {eff*100:6.2f} %")
    lines.append("  (paper: 94.9 % vs 93.1 %)")
    # imbalance raises compute time, which *slightly* flatters the
    # rate-per-node efficiency metric; allow 1 % slack
    assert effs["structured"] >= effs["unstructured"] - 0.01

    lines.append("(c) strong scaling efficiency at 16x:")
    big_s = tgv_workload(2.4e9)
    big_u = tgv_workload(2.4e9, unstructured=True, load_imbalance=0.011)
    s_eff = {}
    for tag, wl in (("structured", big_s), ("unstructured", big_u)):
        eff = strong_scaling(FUGAKU, wl, nodes).efficiencies()[-1]
        s_eff[tag] = eff
        lines.append(f"  {tag:13s} {eff*100:6.2f} %")
    lines.append("  (paper: 82.5 % vs 79.0 %)")
    assert s_eff["structured"] >= s_eff["unstructured"] - 0.01
    assert 0.5 < s_eff["structured"] < 1.0

    benchmark(lambda: weak_scaling(FUGAKU, wl_s, nodes))
    emit("Fig. 12 (modelled): structured vs unstructured panels", lines)
