"""Table 1: state-of-the-art time-to-solution comparison.

Reproduces the *structure* of Table 1: the per-DoF-per-cycle cost of
each chemistry-integration family (explicit RK4 = DINO/S3D, implicit
BDF = CVODE codes, Rosenbrock = CharlesX, ODENet = DeepFlame), measured
on identical reactor states with our implementations, plus the
machine-model rows for the optimized code at the paper's scales.

The paper's ordering to reproduce: ODENet ≫ faster than conventional
integration; the optimized code reaches ~1e-9 s/DoF/cycle while the
2023 baseline sits at ~1e-4."""

import numpy as np

from repro.chemistry import Rosenbrock2, integrate_rk4
from repro.runtime import (
    FUGAKU,
    SUNWAY,
    OptimizationConfig,
    PerfModel,
    tgv_workload,
)

from .conftest import emit

DT_CFD = 1e-6
CYCLE = 1.2e-4  # TGV flow cycle at L=0.48 mm, u0=4 m/s
DOF_PER_CELL = 22.0


def _chemistry_cost_per_cell(mech, flame_manifold, method: str) -> float:
    """Wall seconds to advance one cell's chemistry by DT_CFD."""
    import time

    from repro.core import DirectChemistry

    t = flame_manifold["T"][8:40:4]
    y = flame_manifold["Y"][8:40:4]
    p = flame_manifold["p"]
    n = t.shape[0]
    chem = DirectChemistry(mech, rtol=1e-6, atol=1e-9)
    t0 = time.perf_counter()
    if method == "bdf":
        chem.advance(t, p, y, DT_CFD)
    elif method == "rk4":
        for c in range(n):
            rhs = chem._cell_rhs(p)
            integrate_rk4(rhs, (0.0, DT_CFD),
                          np.concatenate(([t[c]], y[c])), 200)
    elif method == "rosenbrock":
        for c in range(n):
            ros = Rosenbrock2(chem._cell_rhs(p), jac=chem._cell_jac(p))
            ros.solve((0.0, DT_CFD), np.concatenate(([t[c]], y[c])), 20)
    return (time.perf_counter() - t0) / n


def test_table1_chemistry_families(benchmark, mech, flame_manifold,
                                   trained_odenet):
    """Measured per-cell chemistry cost by integrator family +
    machine-model rows for the full code."""
    costs = {
        "E-RK4 (DINO/S3D)": _chemistry_cost_per_cell(mech, flame_manifold, "rk4"),
        "I-BDF/CVODE (YALES2/NEK5000/baseline)": _chemistry_cost_per_cell(
            mech, flame_manifold, "bdf"),
        "Rosenbrock (CharlesX)": _chemistry_cost_per_cell(
            mech, flame_manifold, "rosenbrock"),
    }

    # ODENet batched inference, benchmarked
    t = flame_manifold["T"]
    y = flame_manifold["Y"]
    p = flame_manifold["p"]
    eng = trained_odenet.make_engine(precision="fp32", gelu="table")

    def odenet_advance():
        return trained_odenet.advance(t, p, y, DT_CFD, engine=eng)

    benchmark(odenet_advance)
    costs["ODENet (DeepFlame)"] = benchmark.stats["mean"] / t.shape[0]

    lines = ["chemistry advance cost per cell per CFD step:"]
    for name, c in costs.items():
        tts = c / DOF_PER_CELL / (DT_CFD / CYCLE)
        lines.append(f"  {name:42s} {c:10.3e} s/cell  ->  {tts:9.3e} s/DoF/cycle")
    # paper shape: ODENet at least ~10x cheaper than stiff integration
    assert costs["ODENet (DeepFlame)"] < costs[
        "I-BDF/CVODE (YALES2/NEK5000/baseline)"] / 10

    # machine-model rows (the "our work" lines of Table 1)
    rows = [
        ("our work fp32,   Fugaku 73,728 nodes", FUGAKU, 73_728,
         tgv_workload(9_663_676_416).scaled(16), False, 8.5e-9),
        ("our work fp32,   Sunway 98,304 nodes", SUNWAY, 98_304,
         tgv_workload(19_327_352_832).scaled(32), False, 3.2e-9),
        ("our work mixed,  Fugaku 73,728 nodes", FUGAKU, 73_728,
         tgv_workload(9_663_676_416).scaled(16), True, 5.0e-9),
        ("our work mixed,  Sunway 98,304 nodes", SUNWAY, 98_304,
         tgv_workload(19_327_352_832).scaled(32), True, 1.2e-9),
    ]
    lines.append("machine-model rows (paper value in parentheses):")
    for name, machine, nodes, wl, mixed, paper in rows:
        rep = PerfModel(machine).report(
            wl, nodes, OptimizationConfig.optimized(mixed_precision=mixed))
        lines.append(f"  {name:40s} ToS {rep.time_to_solution:9.3e} "
                     f"(paper {paper:.1e})  {rep.flop_rate/1e15:7.1f} PF "
                     f"({rep.pct_peak(machine)*100:4.1f}% peak)")
        # Note: the paper's ToS and PFlop/s anchors are mutually
        # inconsistent by ~17x under the stated model architectures
        # (see EXPERIMENTS.md); we match the PFlop/s anchors and land
        # within ~20x on ToS, preserving the 4-5 orders-of-magnitude
        # gap to the 2023 baseline (1.3e-4).
        assert 0.05 * paper < rep.time_to_solution < 25 * paper
        assert rep.time_to_solution < 1.3e-4 / 100
    emit("Table 1: SOTA time-to-solution", lines)
