"""Executed chemistry load balancing across decomposed ranks.

The paper attributes the dominant strong-scaling loss to stiff
per-cell chemistry skewing rank-level work under a static domain
decomposition.  This bench *executes* the fix: a stiffness-skewed TGV
(igniting hot blob near one corner) runs domain-decomposed at 2-8
ranks with ``balance_chemistry="none"`` vs ``"dynamic"``, and the
table reports

* the executed rank-level chemistry imbalance (max/mean - 1) before
  and after migration -- the *acceptance gate* is a >= 2x drop at 4
  ranks,
* the measured migration traffic (cells, messages, bytes -- every byte
  from the shared ``CommLedger``), and
* the alpha-beta price of that traffic on Sunway's fabric
  (:func:`repro.runtime.price_balance_report`), next to what the
  imbalance would cost in straggler time.

Physics is invariant: the balanced and unbalanced runs integrate the
same cells and agree to floating-point rounding (asserted orders below
the 1e-8 serial-agreement gate) -- only *where* each cell integrates
changes.

Run:  pytest benchmarks/bench_chemistry_balance.py [--smoke]
"""

import numpy as np

from repro.chemistry import DirectBatchBackend
from repro.core import IdealGasProperties, build_hotspot_tgv_case
from repro.dist import DecomposedSolver
from repro.runtime import SUNWAY, price_balance_report

from .conftest import emit


def _run(mech, n, nparts, mode, steps, dt):
    solver = DecomposedSolver(
        build_hotspot_tgv_case(n=n, mech=mech, radius=0.4), nparts,
        properties=IdealGasProperties(mech),
        chemistry=DirectBatchBackend(mech),
        balance_chemistry=mode)
    for _ in range(steps):
        solver.step(dt)
    return solver


def test_chemistry_balance_executed(smoke, mech):
    """Executed imbalance before/after dynamic balancing, with the
    migration overhead priced by the alpha-beta model."""
    n = 8 if smoke else 10
    rank_counts = [2, 4] if smoke else [2, 4, 8]
    steps = 2          # step 1 seeds the EMA from estimates; step 2 is
    dt = 1e-7          # the measured, EMA-driven migration

    lines = [f"TGV {n}^3 + igniting hot blob, {steps} steps at "
             f"dt={dt:.0e}; imbalance = max/mean - 1 of executed "
             "chemistry work",
             "   P   imb none   imb dyn    drop  moved  mig msgs  "
             "mig KiB   t_mig [us]  t_allred [us]"]
    drops = {}
    for nparts in rank_counts:
        plain = _run(mech, n, nparts, "none", steps, dt)
        dyn = _run(mech, n, nparts, "dynamic", steps, dt)

        # unbalanced executed work == owner-attributed work
        work_none = np.array([r.chemistry.last_backend_stats.total_work
                              for r in plain.ranks])
        imb_none = work_none.max() / work_none.mean() - 1.0
        rep = dyn.last_balance
        imb_dyn = rep.imbalance_executed
        drop = imb_none / imb_dyn if imb_dyn > 0 else np.inf
        drops[nparts] = drop
        priced = price_balance_report(SUNWAY, rep, nparts)
        lines.append(
            f"  {nparts:2d}   {imb_none:8.3f}   {imb_dyn:7.3f} "
            f"{drop:7.1f}x  {rep.n_migrated:5d}  {rep.messages:8d}  "
            f"{rep.bytes_sent / 1024:7.1f}  "
            f"{priced['migration_s'] * 1e6:11.2f}  "
            f"{priced['allreduce_s'] * 1e6:13.2f}")

        # physics invariance: migration must not change the physics --
        # same cells integrated, results scattered back.  Agreement is
        # at rounding level (BLAS kernels round differently for
        # different batch shapes), orders below the 1e-8 serial gate.
        assert np.abs(dyn.gather("y") - plain.gather("y")).max() < 1e-12
        assert np.abs(dyn.gather("u") - plain.gather("u")).max() < 1e-11
        # the static skew is above the balancer's action threshold and
        # the traffic is all ledgered
        assert rep.imbalance_static > 0.05
        assert rep.n_migrated > 0 and rep.bytes_sent > 0

    # acceptance gate: >= 2x executed-imbalance drop at 4 ranks
    assert drops[4] >= 2.0, drops
    lines.append(f"  (gate: >= 2.0x drop at P=4; measured "
                 f"{drops[4]:.1f}x)")
    emit("Chemistry load balance (executed): imbalance before/after",
         lines)
