"""Trained-hybrid chemistry: throughput, accuracy and trust gating.

The closed training loop (``repro.dnn.dataset`` -> ``ODENet.fit`` ->
``ModelRegistry``) produces a *committed* surrogate artifact
(``tgv-hotspot``).  This bench loads that artifact through the
``chemistry="hybrid-trained"`` settings path and holds it to the
paper's hybrid-throughput claim on **live solver states** — the
(T, p, Y) batches an actual hotspot-TGV run visits, not synthetic
manifold samples:

* **throughput**: the trust-gated trained hybrid must advance those
  states >= 20x faster (cells/sec) than the stiffness-graded direct
  batch integrator,
* **accuracy**: max |dY| between the hybrid and direct results on the
  same states must stay <= 1e-6 (the hybrid gate's audit tolerance),
* **trust gate**: far-off-manifold states must be fully gated out —
  bit-identical direct results — and land in the OOD buffer that
  feeds :func:`repro.dnn.registry.retrain_incremental`,
* **audits**: spot-audited cells must adopt the direct result and its
  direct work price.

``--smoke`` shrinks the case and relaxes the numeric gates (CI
machines share cores) but exercises the identical code path,
including loading the committed registry artifact.

Run:  pytest benchmarks/bench_chemistry_training.py   (add --smoke
for the shrunken CI version)
"""

import time

import numpy as np
import pytest

from repro.core import (
    DeepFlameSolver,
    SolverSettings,
    build_chemistry,
    build_hotspot_tgv_case,
)

from .conftest import emit

DT = 1e-8  # the paper's 10 ns chemistry step


def _hybrid_chemistry(mech, **overrides):
    """The hybrid-trained adapter exactly as the settings path builds it."""
    settings = SolverSettings(chemistry="hybrid-trained",
                              trust_gate=overrides.pop("trust_gate",
                                                       "domain"),
                              chemistry_options=overrides)
    return build_chemistry(settings, mech)


@pytest.fixture(scope="module")
def live_states(mech, smoke):
    """Pre-step (T, p, Y) batches from a live hybrid-trained run.

    The hotspot case is advanced by the solver *with the trained
    hybrid in the loop*, so later batches sit on states the surrogate
    itself produced — accumulated drift counts against the gates.
    """
    n = 8 if smoke else 12
    steps = 2 if smoke else 3
    case = build_hotspot_tgv_case(n=n, mech=mech)
    chem = _hybrid_chemistry(mech)
    solver = DeepFlameSolver.from_settings(
        case, SolverSettings(chemistry="none"), chemistry=chem)
    batches = []
    for _ in range(steps):
        batches.append((solver.props.temperature.copy(),
                        solver.p.values.copy(), solver.y.copy()))
        solver.step(DT)
    return batches


class TestTrainedHybrid:
    def test_throughput_and_accuracy_gates(self, mech, live_states, smoke):
        """>= 20x direct cells/sec at max|dY| <= 1e-6 on live states."""
        from repro.chemistry import DirectBatchBackend

        direct = DirectBatchBackend(mech)
        hybrid = _hybrid_chemistry(mech).backend
        # warm both paths (BLAS threads, engine buffers, CSR caches)
        t0, p0, y0 = live_states[0]
        hybrid.advance(y0, t0, p0, DT)
        direct.advance(y0, t0, p0, DT)

        n_cells = 0
        t_direct = t_hybrid = 0.0
        max_err = 0.0
        surrogate_cells = 0
        for t, p, y in live_states:
            tic = time.perf_counter()
            y_d, _, _ = direct.advance(y, t, p, DT)
            t_direct += time.perf_counter() - tic
            tic = time.perf_counter()
            y_h, _, st = hybrid.advance(y, t, p, DT)
            t_hybrid += time.perf_counter() - tic
            n_cells += t.size
            surrogate_cells += st.gate["surrogate_cells"]
            max_err = max(max_err, float(np.abs(y_h - y_d).max()))

        cps_direct = n_cells / t_direct
        cps_hybrid = n_cells / t_hybrid
        speedup = cps_hybrid / cps_direct
        frac = surrogate_cells / n_cells
        emit("trained-hybrid chemistry (live hotspot solver states)", [
            f"{'backend':22s} {'cells/s':>12s}",
            f"{'direct (graded batch)':22s} {cps_direct:12.0f}",
            f"{'hybrid-trained':22s} {cps_hybrid:12.0f}",
            f"speedup {speedup:.1f}x   max|dY| vs direct {max_err:.2e}"
            f"   surrogate fraction {frac:.3f}",
            f"gate counters: {hybrid.counters}",
        ])
        # CI smoke shares cores and runs a smaller batch: relax the
        # wall-clock gate but keep the accuracy gate meaningful.
        min_speedup, max_dy = (3.0, 5e-6) if smoke else (20.0, 1e-6)
        assert frac > 0.95, "domain gate rejected the trained manifold"
        assert speedup >= min_speedup, (
            f"trained hybrid only {speedup:.1f}x over direct")
        assert max_err <= max_dy, (
            f"hybrid disagrees with direct by {max_err:.2e}")

    def test_ood_states_fully_gated_out(self, mech):
        """Far-off-manifold states: exact direct results + OOD buffer."""
        hybrid = _hybrid_chemistry(mech).backend
        rng = np.random.default_rng(11)
        n = 32
        y = rng.random((n, mech.n_species))
        y /= y.sum(axis=1, keepdims=True)
        t = rng.uniform(2600.0, 3000.0, n)
        p = np.full(n, 10e6)
        assert not hybrid.split_mask(y, t, p, DT).any()
        y_h, t_h, st = hybrid.advance(y, t, p, DT)
        y_d, t_d, _ = hybrid.direct.advance(y, t, p, DT)
        np.testing.assert_array_equal(y_h, y_d)
        np.testing.assert_array_equal(t_h, t_d)
        assert st.gate["gated_out_cells"] == n
        drained = hybrid.drain_ood()
        assert drained is not None and drained[0].size == n

    def test_audited_cells_adopt_direct(self, mech, live_states):
        """Spot audits re-run cells through direct and keep its answer."""
        hybrid = _hybrid_chemistry(mech, trust_gate="domain+audit",
                                   audit_fraction=0.05).backend
        t, p, y = live_states[0]
        y_h, _, st = hybrid.advance(y, t, p, DT)
        assert st.gate["audited_cells"] >= 1
        y_d, _, _ = hybrid.direct.advance(y, t, p, DT)
        audited_work = st.work_per_cell[st.work_per_cell >= 1.0]
        assert audited_work.size >= st.gate["audited_cells"]
        # every audited cell's result is bit-identical to direct's
        adopted = np.abs(y_h - y_d).max(axis=1) == 0.0
        assert adopted.sum() >= st.gate["audited_cells"]
