"""Chemistry-backend throughput: cells/sec for every backend.

The paper's core performance story is the chemistry hot path: per-cell
stiff integration dominates reacting-flow wall time and is what the
DNN surrogate replaces.  This bench advances the *same* mixed batch
(cold mixing cells plus a thin hot flame front — the distribution that
produces the load imbalance of Sec. 2) through each backend and
reports cells/sec:

* ``percell``  — the per-cell BDF loop (CVODE-style baseline),
* ``direct``   — the vectorized stiffness-graded batch integrator,
* ``surrogate``— batched ODENet inference,
* ``hybrid``   — temperature-split DNN + direct.

The per-cell baseline is timed on a stratified subsample (it would
take minutes at full batch size) and compared on cells/sec, which is
what the speedup criterion is defined over.  Accuracy gates: the
direct batch backend must agree with the per-cell reference within
integrator tolerance everywhere; surrogate and hybrid are checked on
the trained flame manifold.

Run:  pytest benchmarks/bench_chemistry_backends.py   (add --smoke
for the shrunken CI version)
"""

import numpy as np
import pytest

from repro.chemistry import (
    DirectBatchBackend,
    HybridBackend,
    PerCellBDFBackend,
    SurrogateBackend,
    mixture_line,
)
from repro.runtime import chemistry_balance_report

from .conftest import emit

PRESSURE = 10e6
DT = 1e-7


@pytest.fixture(scope="module")
def mixed_batch(mech, smoke):
    """Mixing-line states with a thin hot flame front (~5 % of cells)."""
    n = 512 if smoke else 10_000
    t, y = mixture_line(mech, n, PRESSURE)
    x = np.linspace(0.0, 1.0, n)
    t = t + 2500.0 * np.exp(-(((x - 0.5) / 0.04) ** 2))
    return {"n": n, "T": t, "Y": y}


@pytest.fixture(scope="module")
def bench_odenet(request, mech, smoke, flame_manifold):
    """The trained surrogate: the full fixture normally, a quickly
    trained small net (labels from the batched direct backend) under
    --smoke."""
    if not smoke:
        return request.getfixturevalue("trained_odenet")
    from repro.dnn import ODENet

    rng = np.random.default_rng(0)
    dt = 1e-6
    base_t, base_y = flame_manifold["T"], flame_manifold["Y"]
    p = flame_manifold["p"]
    ts, ys = [base_t], [base_y]
    for _ in range(2):
        jt = base_t * (1 + rng.normal(0, 0.02, base_t.shape))
        jy = np.clip(base_y * (1 + rng.normal(0, 0.05, base_y.shape)), 0, None)
        jy /= jy.sum(axis=1, keepdims=True)
        ts.append(jt)
        ys.append(jy)
    t_all, y_all = np.concatenate(ts), np.concatenate(ys)
    y_adv, _, _ = DirectBatchBackend(mech).advance(y_all, t_all, p, dt)
    net = ODENet(mech, hidden=(64, 64), seed=0)
    net.fit(t_all, np.full(t_all.shape, p), y_all, y_adv - y_all, dt=dt,
            epochs=200, lr=2e-3, batch_size=32)
    return net


def test_direct_batch_speedup(mech, mixed_batch, smoke):
    """DirectBatchBackend must beat the per-cell loop >= 5x on
    cells/sec (>= 2x at smoke size, where fixed overheads weigh more)
    while agreeing within integrator tolerance."""
    n = mixed_batch["n"]
    t, y = mixed_batch["T"], mixed_batch["Y"]

    direct = DirectBatchBackend(mech)
    y_b, t_b, st_b = direct.advance(y, t, PRESSURE, DT)

    # Stratified subsample for the per-cell baseline (full batch would
    # take minutes); cells/sec is the comparison metric either way.
    stride = max(1, n // (64 if smoke else 190))
    sub = np.arange(0, n, stride)
    percell = PerCellBDFBackend(mech)
    y_p, t_p, st_p = percell.advance(y[sub], t[sub], PRESSURE, DT)

    speedup = st_b.cells_per_second / st_p.cells_per_second
    d_t = np.abs(t_b[sub] - t_p).max()
    d_y = np.abs(y_b[sub] - y_p).max()

    lines = [
        f"batch: {n} cells ({sub.size}-cell baseline subsample), "
        f"dt = {DT:.0e} s, p = {PRESSURE/1e6:.0f} MPa",
        "backend        cells/sec      wall [s]",
        f"  percell     {st_p.cells_per_second:10.1f} {st_p.wall_time:12.2f}",
        f"  direct      {st_b.cells_per_second:10.1f} {st_b.wall_time:12.2f}",
        f"speedup: {speedup:.1f}x   agreement: |dT| {d_t:.3g} K, "
        f"|dY| {d_y:.3g}",
        "sub-batches: " + ", ".join(
            f"{label}:{cells}" for label, cells, _ in st_b.sub_batches),
    ]
    emit("Chemistry backends: direct batch vs per-cell loop", lines)

    assert speedup >= (2.0 if smoke else 5.0)
    assert d_t < 1.0      # K; BDF reference is rtol 1e-6
    assert d_y < 5e-4


def test_all_backends_agree_on_manifold(mech, flame_manifold,
                                        reference_advance, bench_odenet,
                                        smoke):
    """Surrogate and hybrid track the per-cell reference on the
    trained manifold; direct tracks it everywhere."""
    flame = flame_manifold
    dt = reference_advance["dt"]
    t0, y0, p = flame["T"], flame["Y"], flame["p"]
    y_ref = reference_advance["Y"]

    surrogate = SurrogateBackend(bench_odenet)
    direct = DirectBatchBackend(mech)
    hybrid = HybridBackend(SurrogateBackend(bench_odenet),
                           DirectBatchBackend(mech),
                           t_window=(1000.0, 3500.0))

    rows = []
    results = {}
    for name, backend in [("direct", direct), ("surrogate", surrogate),
                          ("hybrid", hybrid)]:
        y_new, _, st = backend.advance(y0, t0, p, dt)
        err = np.abs(y_new - y_ref).max()
        results[name] = (err, st)
        rows.append(f"  {name:10s} max|dY| {err:9.2e}   "
                    f"cells/sec {st.cells_per_second:10.1f}")
    emit("Chemistry backends: agreement vs per-cell reference", rows)

    # Direct integration is tolerance-accurate; the surrogate carries
    # its training error (the paper's Fig. 10 regime); hybrid sits in
    # between because out-of-window cells are integrated directly.
    surrogate_tol = 0.2 if smoke else 0.05
    assert results["direct"][0] < 1e-3
    assert results["surrogate"][0] < surrogate_tol
    assert results["hybrid"][0] <= results["surrogate"][0] + 1e-9

    # Hybrid actually split the batch and accounted for the work.
    report = chemistry_balance_report(results["hybrid"][1])
    assert set(report["per_backend"]) == {"surrogate", "direct"}
    shares = [b["work_share"] for b in report["per_backend"].values()]
    assert abs(sum(shares) - 1.0) < 1e-9


def test_throughput_table(mech, mixed_batch, bench_odenet):
    """cells/sec for every backend on the same mixed batch."""
    t, y = mixed_batch["T"], mixed_batch["Y"]
    backends = {
        "direct": DirectBatchBackend(mech),
        "surrogate": SurrogateBackend(
            bench_odenet, engine=bench_odenet.make_engine(precision="fp32")),
        "hybrid": HybridBackend(SurrogateBackend(bench_odenet),
                                DirectBatchBackend(mech),
                                t_window=(1000.0, 3500.0)),
    }
    lines = ["backend        cells/sec     work imbalance"]
    rates = {}
    for name, backend in backends.items():
        _, _, st = backend.advance(y, t, PRESSURE, DT)
        rates[name] = st.cells_per_second
        lines.append(f"  {name:10s} {st.cells_per_second:10.1f}"
                     f" {st.load_imbalance:12.2f}")
    emit("Chemistry backends: throughput", lines)

    # The DNN path is the paper's headline: far faster than any direct
    # integration of the same batch.
    assert rates["surrogate"] > 5.0 * rates["direct"]
