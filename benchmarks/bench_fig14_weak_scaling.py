"""Fig. 14: weak scaling to the headline scales.

(a) Sunway: 19.3 B -> 618.5 B cells over 3,072 -> 98,304 nodes;
(b) Fugaku: 9.7 B -> 154.6 B cells over 4,608 -> 73,728 nodes.

Paper anchors: Sunway 1.18 EFlop/s (21.8 %) mixed / 438.9 PF (32.3 %)
fp32, efficiencies 92.74 % / 97.31 %; Fugaku 316.5 PF (31.8 %) /
186.5 PF (37.4 %), efficiencies 93.59 % / 96.2 %; best ToS
1.2e-9 s/DoF/cycle."""

import pytest

from repro.runtime import (
    FUGAKU,
    SUNWAY,
    OptimizationConfig,
    tgv_workload,
    weak_scaling,
)

from .conftest import emit


def test_fig14a_sunway_weak(benchmark):
    wl = tgv_workload(19_327_352_832)
    nodes = [3072, 6144, 12288, 24576, 49152, 98304]
    s16 = benchmark(weak_scaling, SUNWAY, wl, nodes)
    s32 = weak_scaling(SUNWAY, wl, nodes,
                       OptimizationConfig.optimized(mixed_precision=False))
    lines = ["Sunway weak scaling, mixed-FP16:"]
    for p in s16.points:
        lines.append(f"  {p.nodes:6d} nodes  {p.n_cells/1e9:7.1f} B cells  "
                     f"{p.pflops:8.1f} PF ({p.pct_peak*100:4.1f} %)  "
                     f"eff {p.efficiency*100:5.1f} %  ToS {p.time_to_solution:.2e}")
    last16, last32 = s16.points[-1], s32.points[-1]
    lines += [
        f"FP32 at 98,304 nodes: {last32.pflops:.1f} PF "
        f"({last32.pct_peak*100:.1f} %), eff {last32.efficiency*100:.2f} %",
        "(paper: 1186.9 PF / 21.8 % mixed, 438.9 PF / 32.3 % fp32;"
        " eff 92.74 % / 97.31 %; cells reach 618.5 B)",
    ]
    assert last16.n_cells == pytest.approx(618.5e9, rel=0.01)
    assert last16.efficiency == pytest.approx(0.9274, abs=0.04)
    assert last32.efficiency == pytest.approx(0.9731, abs=0.03)
    assert last16.pct_peak == pytest.approx(0.218, abs=0.05)
    assert last32.pct_peak == pytest.approx(0.323, abs=0.06)
    # ToS orders below the 2023 baseline's 1.3e-4 (Table 1); the
    # paper's 1.2e-9 anchor is ~17x lower than its own PFlop/s anchor
    # implies (see EXPERIMENTS.md) -- we match the PFlop/s side.
    assert 1e-10 < last16.time_to_solution < 1e-7
    emit("Fig. 14(a): Sunway weak scaling", lines)


def test_fig14b_fugaku_weak(benchmark):
    wl = tgv_workload(9_663_676_416)
    nodes = [4608, 9216, 18432, 36864, 73728]
    s16 = benchmark(weak_scaling, FUGAKU, wl, nodes)
    s32 = weak_scaling(FUGAKU, wl, nodes,
                       OptimizationConfig.optimized(mixed_precision=False))
    lines = ["Fugaku weak scaling, mixed-FP16:"]
    for p in s16.points:
        lines.append(f"  {p.nodes:6d} nodes  {p.n_cells/1e9:7.1f} B cells  "
                     f"{p.pflops:8.1f} PF ({p.pct_peak*100:4.1f} %)  "
                     f"eff {p.efficiency*100:5.1f} %")
    last16, last32 = s16.points[-1], s32.points[-1]
    lines += [
        f"FP32 at 73,728 nodes: {last32.pflops:.1f} PF "
        f"({last32.pct_peak*100:.1f} %), eff {last32.efficiency*100:.2f} %",
        "(paper: 316.5 PF / 31.8 % mixed, 186.5 PF / 37.4 % fp32;"
        " eff 93.59 % / 96.2 %; cells reach 154.6 B)",
    ]
    assert last16.n_cells == pytest.approx(154.6e9, rel=0.01)
    assert last16.efficiency == pytest.approx(0.9359, abs=0.03)
    assert last32.efficiency == pytest.approx(0.962, abs=0.03)
    assert last16.pct_peak == pytest.approx(0.318, abs=0.05)
    assert last32.pct_peak == pytest.approx(0.374, abs=0.05)
    emit("Fig. 14(b): Fugaku weak scaling", lines)
