"""Ablation benches for the design choices DESIGN.md calls out.

* partitioner quality vs naive alternatives (edge cut / off-diagonal
  fraction driving the block format's value),
* thread-count sweep of the block structure (how off-diagonal leakage
  and nnz balance scale with t),
* GeLU-table interval sweep (accuracy/memory tradeoff around the
  paper's 0.01 choice),
* solver choice for the pressure system (GAMG vs PCG iterations)."""

import numpy as np

from repro.dnn import GeLUTable
from repro.mesh import (
    build_rocket_mesh,
    cell_graph_from_mesh,
    partition_renumbering,
)
from repro.partition import edge_cut, offdiag_fraction, partition_graph
from repro.solvers import (
    DICPreconditioner,
    GAMGSolver,
    SolverControls,
    pcg_solve,
)
from repro.sparse import build_block_converter
from tests.conftest import make_laplacian_ldu

from .conftest import emit


def test_ablation_partitioner_methods(benchmark):
    mesh = build_rocket_mesh(nr=8, ntheta_per_sector=10, nz=28, n_sectors=2)
    graph = cell_graph_from_mesh(mesh)
    lines = [f"rocket graph: {graph.n_vertices} cells, {graph.n_edges} faces"]
    mem_ml = benchmark(partition_graph, graph, 8)
    for method, mem in (("multilevel", mem_ml),
                        ("strided", partition_graph(graph, 8, method="strided")),
                        ("random", partition_graph(graph, 8, method="random"))):
        lines.append(f"  {method:10s} cut {edge_cut(graph, mem):6d}  "
                     f"offdiag {offdiag_fraction(graph, mem)*100:6.2f} %")
    cut_ml = edge_cut(graph, mem_ml)
    cut_rd = edge_cut(graph, partition_graph(graph, 8, method="random"))
    assert cut_ml < cut_rd / 4
    emit("Ablation: partitioner method", lines)


def test_ablation_thread_count_sweep(benchmark):
    mesh = build_rocket_mesh(nr=8, ntheta_per_sector=10, nz=28, n_sectors=2)
    graph = cell_graph_from_mesh(mesh)
    lines = ["t    offdiag-nnz   nnz-balance (max/mean)"]

    def sweep():
        rows = []
        for t in (2, 4, 8, 16):
            mem = partition_graph(graph, t)
            perm = partition_renumbering(graph, mem)
            mesh2 = mesh.renumbered(perm)
            ldu = make_laplacian_ldu(mesh2)
            blk = build_block_converter(ldu, mem[np.argsort(perm)]).convert(ldu)
            rows.append((t, blk.offdiag_nnz_fraction(),
                         blk.nnz_per_thread().max()
                         / blk.nnz_per_thread().mean()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fracs = []
    for t, frac, bal in rows:
        lines.append(f"{t:2d}   {frac*100:8.2f} %   {bal:8.3f}")
        fracs.append(frac)
    # more threads -> more cut surface -> larger off-diagonal share
    assert fracs[0] < fracs[-1]
    emit("Ablation: thread-count sweep of the block format", lines)


def test_ablation_gelu_interval(benchmark):
    lines = ["interval   entries   interior max err   table bytes"]
    errs = []
    for interval in (0.04, 0.02, 0.01, 0.005):
        tab = GeLUTable(interval=interval, precision="fp64")
        xs = np.linspace(-2.99, 2.99, 60_001)
        from repro.dnn import gelu_exact

        err = np.abs(tab(xs) - gelu_exact(xs)).max()
        errs.append(err)
        lines.append(f"{interval:8.3f}   {tab.n_entries:7d}   {err:14.3e}"
                     f"   {tab.table_bytes():8d}")
    benchmark(GeLUTable, 0.01)
    # 2nd-order table: halving the interval cuts the error ~8x
    assert errs[0] / errs[2] > 16.0
    lines.append("(paper chooses 0.01: errors already below fp16 resolution)")
    emit("Ablation: GeLU table interval", lines)


def test_ablation_pressure_solver_choice(benchmark):
    from repro.mesh import build_box_mesh

    mesh = build_box_mesh(12, 12, 12)
    ldu = make_laplacian_ldu(mesh, shift=0.01)
    b = np.random.default_rng(0).random(ldu.n)
    ctl = SolverControls(tolerance=1e-9, max_iterations=400)

    gamg = GAMGSolver(ldu)
    _, res_g = benchmark(gamg.solve, b, None, ctl)
    _, res_p = pcg_solve(ldu, b, preconditioner=DICPreconditioner(ldu).apply,
                         controls=ctl)
    lines = [
        f"GAMG     : {res_g.iterations:4d} cycles, flops {res_g.flops:.2e}",
        f"PCG(DIC) : {res_p.iterations:4d} iters,  flops {res_p.flops:.2e}",
        "(OpenFOAM practice: GAMG for pressure at scale -- fewer, "
        "heavier iterations and fewer global reductions)",
    ]
    assert res_g.converged and res_p.converged
    assert res_g.iterations < res_p.iterations
    emit("Ablation: pressure solver choice", lines)
