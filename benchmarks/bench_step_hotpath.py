"""Zero-reassembly hot path: end-to-end ``DeepFlameSolver.step`` bench.

PRs 1-4 built batching, multi-RHS transport and decomposed execution;
this bench gates the next lever: eliminating per-step *setup* work so
a step's wall time measures kernels, not Python churn.  Two solver
configurations advance the same ~6k-cell hot-spot TGV with live
chemistry:

* **baseline** -- the PR-4 path: per-solve scipy CSR rebuilds, fresh
  LDU + source arrays per operator, per-call Krylov vectors,
  finite-difference chemistry Jacobians and the per-cell ``np.roots``
  cubic-EoS loop;
* **fast**     -- ``fast_assembly=True``: persistent CSR pattern +
  fused workspace assembly + pooled Krylov vectors + level-scheduled
  cached DIC, analytic chemistry Jacobians, batched companion-matrix
  EoS roots.

Gates: >= 2x end-to-end step speedup at the full size (>= 1.2x at
``--smoke`` size, where fixed overheads dominate); frozen-chemistry
transport/pressure agreement <= 1e-12; live-chemistry agreement
<= 1e-8; decomposed (2 and 4 ranks) fast-assembly runs match the
serial fast path <= 1e-8.

Run:  pytest benchmarks/bench_step_hotpath.py        (add --smoke for
the shrunken CI version)
"""

import time

import numpy as np
import pytest

from repro.chemistry import DirectBatchBackend
from repro.core import DeepFlameSolver, NoChemistry
from repro.core.cases import build_hotspot_tgv_case, build_tgv_case
from repro.core.properties import DirectRealFluidProperties
from repro.solvers import SolverControls

from .conftest import emit

DT = 1e-8


def _seed_radicals(case, mech):
    """Partially burn the hot blob so its cells integrate stiffly
    (live chemistry: ROS2/BDF sub-batches with Jacobian refreshes)."""
    idx = mech.species_index
    hot = case.temperature > 1500.0
    y = case.mass_fractions
    for sp, val in [("OH", 1e-3), ("H", 1e-4), ("O", 1e-4),
                    ("CO", 2e-2), ("H2O", 5e-2), ("CO2", 3e-2)]:
        y[hot, idx[sp]] = val
    y[hot] /= y[hot].sum(axis=1, keepdims=True)
    return case


def _build(mech, n, fast: bool, stiff: bool):
    """A solver in the fast or the PR-4 baseline configuration.

    ``stiff`` seeds a partially burned 2400 K kernel whose cells hit
    the Jacobian-refresh-heavy ROS2 bins (the full-size workload);
    the smoke size keeps the milder default blob, since a handful of
    stiff cells would dominate a 512-cell step with size-independent
    integrator overhead on *both* sides.
    """
    if stiff:
        # 2000 K keeps the kernel in the graded ROS2 bins (Jacobian
        # refreshes dominate) without escalating into the per-cell BDF
        # fallback over the timed window.
        case = _seed_radicals(
            build_hotspot_tgv_case(n=n, t_hot=2000.0, radius=0.45,
                                   mech=mech), mech)
    else:
        case = build_hotspot_tgv_case(n=n, mech=mech)
    return DeepFlameSolver(
        case,
        properties=DirectRealFluidProperties(mech, batched_eos=fast),
        chemistry=DirectBatchBackend(
            mech, jacobian="analytic" if fast else "fd"),
        fast_assembly=fast)


def test_step_hotpath_speedup(mech, smoke):
    n = 8 if smoke else 18
    steps = 2 if smoke else 3
    solvers = {name: _build(mech, n, fast, stiff=not smoke)
               for name, fast in [("baseline", False), ("fast", True)]}
    wall = {}
    timings = {}
    for name, s in solvers.items():
        s.step(DT)  # warm pools / patterns / caches
        t0 = time.perf_counter()
        for _ in range(steps):
            s.step(DT)
        wall[name] = (time.perf_counter() - t0) / steps
        timings[name] = s.last_timings

    speedup = wall["baseline"] / wall["fast"]
    d_y = np.abs(solvers["fast"].y - solvers["baseline"].y).max()
    d_t = np.abs(solvers["fast"].props.temperature
                 - solvers["baseline"].props.temperature).max()

    lines = [f"{solvers['fast'].mesh.n_cells} cells, live chemistry "
             f"(hot blob), dt = {DT:.0e} s, {steps} timed steps",
             "config     step [ms]   dnn [ms]  constr [ms]  solve [ms]"
             "  allocs/step"]
    for name in ("baseline", "fast"):
        tm = timings[name]
        lines.append(
            f"  {name:9s} {wall[name]*1e3:8.1f} {tm.dnn*1e3:10.1f}"
            f" {tm.construction*1e3:12.2f} {tm.solving*1e3:11.2f}"
            f" {tm.total_allocs:12d}")
    lines += [f"end-to-end speedup: {speedup:.2f}x   "
              f"|dY| {d_y:.3g}  |dT| {d_t:.3g}"]
    emit("Step hot path: fast assembly + analytic Jacobians vs PR-4",
         lines)

    # Cross-config agreement: ROS2 is a W-method, so the (~1e-7
    # relative) FD-vs-analytic Jacobian difference enters the stiff
    # cells' *solutions* at the 1e-6 level -- the strict <= 1e-8
    # chemistry gate lives in test_live_chemistry_agreement below,
    # which varies only the assembly path.
    assert d_y <= 1e-5
    # a warm fast step allocates nothing in construction/solving
    assert timings["fast"].alloc_construction == 0
    assert timings["fast"].alloc_solving == 0
    assert speedup >= (1.2 if smoke else 2.0)


def test_live_chemistry_agreement(mech, smoke):
    """Hot path vs reference with *identical* chemistry configuration
    (analytic Jacobians on both sides): only the assembly/solve path
    differs, and the states agree <= 1e-8 over several steps."""
    n = 6 if smoke else 8
    steps = 2 if smoke else 3

    def build(fast):
        case = _seed_radicals(
            build_hotspot_tgv_case(n=n, t_hot=2200.0, radius=0.4,
                                   mech=mech), mech)
        return DeepFlameSolver(case,
                               chemistry=DirectBatchBackend(mech),
                               fast_assembly=fast)

    fast, ref = build(True), build(False)
    for _ in range(steps):
        fast.step(DT)
        ref.step(DT)
    d_y = np.abs(fast.y - ref.y).max()
    d_t = np.abs(fast.props.temperature - ref.props.temperature).max()
    emit("Step hot path: live-chemistry agreement (assembly path only)",
         [f"|dY| {d_y:.3g}   |dT| {d_t:.3g} over {steps} steps "
          f"({fast.mesh.n_cells} cells, igniting kernel)"])
    assert d_y <= 1e-8
    assert d_t <= 1e-4


def test_transport_pressure_match_reference(mech, smoke):
    """Frozen chemistry isolates the PDE side: fast vs reference step
    agreement <= 1e-12 over several steps."""
    n = 6 if smoke else 10
    fast = DeepFlameSolver(build_tgv_case(n=n, mech=mech),
                           chemistry=NoChemistry(), fast_assembly=True)
    ref = DeepFlameSolver(build_tgv_case(n=n, mech=mech),
                          chemistry=NoChemistry(), fast_assembly=False)
    for _ in range(5):
        fast.step(DT)
        ref.step(DT)
    d_p = np.abs((fast.p.values - ref.p.values) / ref.p.values).max()
    d_u = np.abs(fast.u.values - ref.u.values).max()
    d_h = np.abs((fast.h - ref.h) / ref.h).max()
    emit("Step hot path: frozen-chemistry agreement",
         [f"|dp|/p {d_p:.3g}   |dU| {d_u:.3g}   |dh|/h {d_h:.3g} "
          f"({fast.mesh.n_cells} cells, 5 steps)"])
    assert d_p <= 1e-12
    assert d_h <= 1e-12
    assert d_u <= 1e-12 * max(np.abs(ref.u.values).max(), 1.0)


@pytest.mark.parametrize("nparts", [2, 4])
def test_decomposed_fast_assembly(mech, smoke, nparts):
    """The workspace path holds under domain decomposition: per-rank
    workspaces, distributed solves, <= 1e-8 agreement with serial."""
    from repro.dist import DecomposedSolver

    n = 6 if smoke else 8
    tight = dict(
        scalar_controls=SolverControls(tolerance=1e-12, max_iterations=500),
        pressure_controls=SolverControls(tolerance=1e-12,
                                         max_iterations=1000))
    serial = DeepFlameSolver(build_tgv_case(n=n, mech=mech),
                             chemistry=NoChemistry(), fast_assembly=True,
                             **tight)
    dist = DecomposedSolver(build_tgv_case(n=n, mech=mech), nparts,
                            chemistry=NoChemistry(), fast_assembly=True,
                            **tight)
    steps = 2 if smoke else 3
    for _ in range(steps):
        serial.step(DT)
        dist.step(DT)
    d_y = np.abs(dist.gather("y") - serial.y).max()
    d_p = np.abs((dist.gather("p") - serial.p.values)
                 / serial.p.values).max()
    emit(f"Step hot path: decomposed fast assembly ({nparts} ranks)",
         [f"|dY| {d_y:.3g}   |dp|/p {d_p:.3g} over {steps} steps"])
    assert d_y <= 1e-8
    assert d_p <= 1e-8
