"""Sec. 3.4: the three I/O optimizations.

* runtime mesh refinement: 121 TB -> 16 GB input reduction (measured
  on-disk at bench scale + the paper-scale accounting),
* Foam file indexing: indexed parallel reads match master-read data
  exactly on real files,
* grouped parallel I/O: P vs sqrt(P) concurrent-reader tradeoff at
  589,824 processes through the filesystem cost model."""

import numpy as np

from repro.io import (
    IOCostModel,
    conventional_pipeline,
    fused_pipeline,
    measure_strategies,
    storage_comparison,
    write_collated,
)
from repro.mesh import BoxSpec

from .conftest import emit


def test_sec341_runtime_refinement(benchmark, tmp_path):
    spec = BoxSpec(8, 8, 8)
    _, cost_conv = conventional_pipeline(spec, 1, tmp_path)

    def fused():
        return fused_pipeline(spec, 1, tmp_path)

    _, cost_fused = benchmark(fused)
    cmp = storage_comparison(18_874_368, 5)
    lines = [
        f"bench scale: conventional reads {cost_conv.bytes_read} B, "
        f"fused reads {cost_fused.bytes_read} B "
        f"({cost_conv.bytes_read/cost_fused.bytes_read:.1f}x reduction/level)",
        f"paper scale: fine mesh+fields {cmp['fine_bytes']/1e12:.0f} TB "
        f"(paper: ~121 TB) vs coarse {cmp['coarse_bytes']/1e9:.1f} GB "
        "(paper: 16 GB)",
        f"cells {cmp['coarse_cells']/1e6:.0f} M -> "
        f"{cmp['fine_cells']/1e9:.0f} B via 5x 2x2x2 refinement",
    ]
    assert cost_fused.bytes_read * 6 < cost_conv.bytes_read
    assert 0.5e14 < cmp["fine_bytes"] < 2.5e14
    emit("Sec. 3.4.1: runtime mesh refinement", lines)


def test_sec342_343_read_strategies(benchmark, tmp_path):
    rng = np.random.default_rng(0)
    n_ranks = 64
    arrays = [rng.random(2048) for _ in range(n_ranks)]
    path = tmp_path / "fields.foamcoll"
    write_collated(path, arrays, "U")

    timings = benchmark(measure_strategies, path, n_ranks)
    lines = ["measured on disk (64 ranks, identical data verified):"]
    for name, t in timings.items():
        lines.append(f"  {name:24s} {t.wall_time*1e3:8.2f} ms  "
                     f"opens {t.file_opens:3d}  scatter {t.scatter_bytes} B")

    model = IOCostModel()
    p = 589_824
    v = 16e9
    lines.append(f"cost model at P={p}, V=16 GB:")
    rows = {
        "master read + scatter": model.master_read_scatter(v, p),
        "parallel read (indexed)": model.parallel_read(v, p),
        "grouped parallel (sqrt P)": model.grouped_parallel_read(v, p),
    }
    for name, t in rows.items():
        lines.append(f"  {name:26s} {t:9.2f} s")
    lines.append(f"best group size: {model.best_group_size(v, p)} "
                 f"(sqrt(P) = {int(np.sqrt(p))})")
    assert rows["grouped parallel (sqrt P)"] == min(rows.values())
    emit("Sec. 3.4.2-3.4.3: indexing + grouped parallel I/O", lines)
