"""Train the two surrogates (ODENet + PRNet) from scratch and verify
their accuracy against the direct paths -- the full DeepFlame model
pipeline at laptop scale.

* ODENet: trained on constant-pressure reactor trajectories of the
  built-in 17-species LOX/CH4 mechanism (the role Cantera plays in the
  paper),
* PRNet: trained on Peng-Robinson property evaluations over the flame
  manifold.

Run:  python examples/train_surrogates.py
"""

import numpy as np

from repro.chemistry import ConstantPressureReactor, load_mechanism, premixed_state
from repro.dnn import ODENet, PRNet
from repro.thermo import RealFluidMixture


def train_odenet(mech):
    print("== ODENet ==")
    reactor = ConstantPressureReactor(mech, rtol=1e-7, atol=1e-10)
    states = [premixed_state(mech, t0, 10e6) for t0 in (1400.0, 1600.0)]
    print("  sampling reactor trajectories (stiff BDF integration)...")
    xs, ys = reactor.sample_training_pairs(states, dt_cfd=1e-7,
                                           n_snapshots=60, horizon=5e-5)
    print(f"  {xs.shape[0]} training pairs")
    net = ODENet(mech, hidden=(64, 64), seed=0)
    hist = net.fit(xs[:, 0], xs[:, 1], xs[:, 2:], ys, dt=1e-7,
                   epochs=250, lr=3e-3)
    print(f"  training loss {hist.train_loss[0]:.3e} -> "
          f"{hist.train_loss[-1]:.3e} (val {hist.final_val:.3e})")

    pred = net.predict_delta_y(xs[:, 0], xs[:, 1], xs[:, 2:], 1e-7)
    ss_res = ((pred - ys) ** 2).sum()
    ss_tot = ((ys - ys.mean(axis=0)) ** 2).sum()
    print(f"  R^2 on training manifold: {1 - ss_res/ss_tot:.4f}")

    eng16 = net.make_engine(precision="fp16", gelu="table")
    pred16 = net.predict_delta_y(xs[:, 0], xs[:, 1], xs[:, 2:], 1e-7,
                                 engine=eng16)
    scale = np.abs(pred).max()
    print(f"  mixed-FP16 vs fp64 max deviation: "
          f"{np.abs(pred16 - pred).max()/scale:.2%} of range")
    return net


def train_prnet(mech):
    print("\n== PRNet ==")
    rf = RealFluidMixture(mech)
    net = PRNet(mech, density_hidden=(64, 32), transport_hidden=(64, 32))
    print("  sampling the Peng-Robinson property manifold...")
    h1, h2 = net.fit_from_manifold(rf, 10e6, epochs=300)
    print(f"  density net loss  {h1.train_loss[0]:.3e} -> "
          f"{h1.train_loss[-1]:.3e}")
    print(f"  transport net loss {h2.train_loss[0]:.3e} -> "
          f"{h2.train_loss[-1]:.3e}")

    # spot check: LOX at 180 K, 10 MPa
    y = np.zeros((1, mech.n_species))
    y[0, mech.species_index["O2"]] = 1.0
    h = rf.h_mass(np.array([180.0]), 10e6, y)
    rho_net, t_net, mu_net, alpha_net, cp_net = net.predict(h, 10e6, y)
    props = rf.properties_tp(np.array([180.0]), 10e6, y)
    print(f"  LOX @ 180 K: rho {rho_net[0]:.1f} (direct {props.rho[0]:.1f}) "
          f"kg/m^3, T {t_net[0]:.1f} K, cp {cp_net[0]:.0f} "
          f"(direct {props.cp_mass[0]:.0f}) J/kg/K")
    return net


def main() -> None:
    mech = load_mechanism()
    print(f"mechanism: {mech.name} ({mech.n_species} species / "
          f"{mech.n_reactions} reactions)\n")
    train_odenet(mech)
    train_prnet(mech)
    print("\nDone. Larger (paper-size) architectures: "
          "ODENet.paper_architecture(mech), PRNet.paper_architecture(mech).")


if __name__ == "__main__":
    main()
