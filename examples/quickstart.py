"""Quickstart: a small supercritical reactive Taylor-Green vortex.

Builds the paper's TGV case (10 MPa LOX/CH4, O2 at 150 K / CH4 at
300 K, Taylor-Green velocity at u0 = 4 m/s), runs a few time steps of
the DeepFlame solver with direct Peng-Robinson real-fluid properties,
and prints per-step diagnostics and the component time breakdown.

The chemistry path is selectable -- every option routes through the
batched backend subsystem (``repro.chemistry.backends``):

  --chemistry none            frozen chemistry (default; fastest)
  --chemistry percell         per-cell BDF reference loop
  --chemistry direct          vectorized stiffness-graded batch integrator
  --chemistry surrogate       ODENet inference (trained on the fly)
  --chemistry hybrid          temperature-split DNN + direct
  --chemistry hybrid-trained  registered surrogate artifact with the
                              per-cell trust gate (``--trust-gate``);
                              ends with the gate hit/audit/fallback
                              counters

The transport path is selectable too:

  --transport coupled      one shared-operator assembly + one blocked
                           multi-RHS Krylov solve for all species (and
                           for the 3 momentum components); default
  --transport per-species  the sequential assemble+solve reference

Either way the run ends with the measured per-step transport speedup
of coupled over per-species on this case.

With ``--ranks N`` the same case is *also* advanced by the
domain-decomposed executor (``repro.dist.DecomposedSolver``): N
partitioned subdomains with real halo exchanges and allreduce-based
Krylov reductions over an in-process message fabric.  The run prints
the serial-vs-decomposed max |delta| per step together with the
measured per-step message/byte ledger.

With ``--balance static|dynamic`` (requires ``--ranks``) the
decomposed run additionally load-balances chemistry: stiff cells
migrate to underloaded ranks through the same ledgered fabric
(``repro.dist.ChemistryLoadBalancer``), and the run ends with the
chemistry-balance ledger summary (cells migrated, migration traffic,
executed vs static rank imbalance).

Every flag above sets one field of a single validated
``repro.core.SolverSettings`` object -- the unified configuration the
solvers are built from (``DeepFlameSolver.from_settings`` /
``DecomposedSolver.from_settings``).  ``--sweep key=v1,v2,...`` fans
that settings object out over an in-process ensemble
(``repro.orchestrate.Ensemble``): one instance per value, sharing one
mesh/mechanism/workspace, with the per-instance cost table and the
shared-memory footprint printed at the end.  The key may be a dotted
settings path, e.g. ``scalar_controls.tolerance``.

Run:  python examples/quickstart.py [--chemistry direct] [--steps 5]
      python examples/quickstart.py --ranks 4
      python examples/quickstart.py --ranks 4 --balance dynamic
      python examples/quickstart.py --sweep n_correctors=1,2,3
      python examples/quickstart.py --sweep scalar_controls.tolerance=1e-6,1e-9,1e-12
"""

import argparse

import numpy as np

from repro.core import (
    TRUST_GATE_MODES,
    BatchedChemistry,
    DeepFlameSolver,
    DirectChemistry,
    HybridChemistry,
    NoChemistry,
    ODENetChemistry,
    SolverSettings,
    build_tgv_case,
)
from repro.core import build_chemistry as chemistry_from_settings
from repro.orchestrate import Ensemble
from repro.solvers import SolverControls

CHOICES = ("none", "percell", "direct", "surrogate", "hybrid",
           "hybrid-trained")
TRANSPORT_CHOICES = ("coupled", "per-species")


def measure_transport_speedup(case_builder, dt: float, steps: int = 2):
    """Per-step (construction + solving) wall time of each transport
    mode on fresh solvers over identical frozen-chemistry steps."""
    per_step = {}
    for mode in TRANSPORT_CHOICES:
        solver = DeepFlameSolver.from_settings(
            case_builder(), SolverSettings(transport=mode))
        total = 0.0
        for _ in range(steps):
            solver.step(dt)
            tm = solver.last_timings
            total += tm.construction + tm.solving
        per_step[mode] = total / steps
    return per_step


def _quick_odenet(mech, case, dt):
    """Train a small ODENet on the case's own state manifold (labels
    from the batched direct backend) -- a few seconds, demo quality."""
    from repro.chemistry import DirectBatchBackend
    from repro.dnn import ODENet

    rng = np.random.default_rng(0)
    idx = rng.choice(case.mesh.n_cells, size=min(96, case.mesh.n_cells),
                     replace=False)
    t0 = case.temperature[idx]
    y0 = case.mass_fractions[idx]
    p = float(case.pressure.values[0])
    jt = t0 * (1 + rng.normal(0, 0.05, t0.shape))
    jy = np.clip(y0 * (1 + rng.normal(0, 0.05, y0.shape)), 0, None)
    jy /= jy.sum(axis=1, keepdims=True)
    t_all = np.concatenate([t0, jt])
    y_all = np.vstack([y0, jy])
    y_adv, _, _ = DirectBatchBackend(mech).advance(y_all, t_all, p, dt)
    net = ODENet(mech, hidden=(32, 32), seed=0)
    net.fit(t_all, np.full(t_all.shape, p), y_all, y_adv - y_all, dt=dt,
            epochs=120, lr=2e-3, batch_size=32)
    return net


def build_chemistry(name: str, mech, case, dt, trust_gate: str):
    if name == "none":
        return NoChemistry()
    if name == "percell":
        return DirectChemistry(mech)
    if name == "direct":
        return BatchedChemistry(mech)
    if name == "hybrid-trained":
        # Everything here is settings-driven: the registered artifact,
        # the fp32/tabulated-GeLU engine and the trust gate all come
        # from the validated SolverSettings fields.
        print("Loading the registered 'tgv-hotspot' surrogate artifact ...")
        return chemistry_from_settings(
            SolverSettings(chemistry="hybrid-trained",
                           trust_gate=trust_gate), mech)
    print(f"Training a demo ODENet for the {name!r} backend ...")
    net = _quick_odenet(mech, case, dt)
    if name == "surrogate":
        return ODENetChemistry(net)
    # TGV cells start at 150-300 K: put the window over the cold
    # manifold the net was just trained on so the split is visible.
    return HybridChemistry(mech, net, t_window=(140.0, 250.0))


def run_decomposed(args, mech, dt: float) -> None:
    """Serial-vs-decomposed comparison: same case, N ranks, tight
    solver tolerances so the only differences left are floating-point
    reduction order (and the block-local pressure preconditioner).

    The decomposition is *executed*, not analytic: every halo
    exchange, allreduce and (with ``--balance``) chemistry-migration
    message actually flows through the in-process fabric and lands in
    the ledger the summary prints.
    """
    from repro.chemistry import DirectBatchBackend
    from repro.dist import DecomposedSolver

    settings = SolverSettings(
        ranks=args.ranks, balance_chemistry=args.balance,
        scalar_controls=SolverControls(tolerance=1e-12, max_iterations=500),
        pressure_controls=SolverControls(tolerance=1e-12,
                                         max_iterations=1000),
    )
    # Chemistry balancing needs a batched backend on both sides of the
    # comparison; the hot blob skews the stiffness so migration has
    # something to balance on an otherwise-cold TGV.
    balancing = args.balance != "none"

    def case():
        if balancing:
            from repro.core import build_hotspot_tgv_case

            return build_hotspot_tgv_case(n=args.n, mech=mech)
        return build_tgv_case(n=args.n, mech=mech)

    def chem():
        return DirectBatchBackend(mech) if balancing else NoChemistry()

    print(f"\nDecomposed execution over {args.ranks} ranks "
          "(vs the serial solver, tight tolerances) ...")
    serial = DeepFlameSolver.from_settings(
        case(), settings.overlay(ranks=0, balance_chemistry="none"),
        chemistry=chem())
    dist = DecomposedSolver.from_settings(case(), settings,
                                          chemistry=chem())
    stats = dist.decomp.stats()
    print(f"  partition: cells/rank {stats['cells_per_rank']}, "
          f"{stats['cut_faces']} cut faces, "
          f"halo cells {stats['halo_cells']}")
    print("  step   max|dY|     max|dT|     max|dp|/p   "
          "msgs  halo KiB  allred  allred B")
    for _ in range(args.steps):
        serial.step(dt)
        dist.step(dt)
        c = dist.last_comm
        d_y = np.abs(dist.gather("y") - serial.y).max()
        d_t = np.abs(dist.gather("T") - serial.props.temperature).max()
        d_p = np.abs((dist.gather("p") - serial.p.values)
                     / serial.p.values).max()
        print(f"  {dist.step_count:4d}  {d_y:.3e}  {d_t:.3e}  {d_p:.3e}"
              f"  {c['messages']:5d} {c['bytes']/1024:9.1f}"
              f"  {c['allreduces']:6d} {c['allreduce_bytes']:9d}")
    led = dist.comm.ledger.totals()
    print(f"  cumulative ledger: {led['messages']} messages / "
          f"{led['bytes']/1024:.1f} KiB halo traffic, "
          f"{led['allreduces']} allreduces / {led['allreduce_bytes']} B")
    if balancing and dist.last_balance is not None:
        rep = dist.last_balance
        print(f"\nChemistry-balance ledger ({rep.mode}, last step):")
        print(f"  migrated cells: {rep.n_migrated}, migration "
              f"messages: {rep.messages} / {rep.bytes_sent/1024:.1f} KiB, "
              f"allreduces: {rep.allreduces} / {rep.allreduce_bytes} B")
        print(f"  rank imbalance (max/mean - 1): "
              f"{rep.imbalance_static:.3f} static -> "
              f"{rep.imbalance_executed:.3f} executed")
        print("  per-rank work  owner:    "
              + " ".join(f"{w:8.0f}" for w in rep.owner_work))
        print("  per-rank work  executed: "
              + " ".join(f"{w:8.0f}" for w in rep.executed_work))


def _coerce(text: str):
    """Parse one swept value: bool/int/float when it looks like one,
    else the raw string (e.g. a chemistry mode name)."""
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            pass
    return text


def run_sweep(args, base: SolverSettings, dt: float) -> None:
    """Fan the base settings over an in-process ensemble.

    One instance per swept value, all sharing a single mesh,
    mechanism, property evaluator and equation workspace; ends with
    the per-instance cost table and the shared-memory footprint vs
    running the same sweep as independent solvers.
    """
    key, _, raw = args.sweep.partition("=")
    if not raw:
        raise SystemExit("--sweep expects key=v1,v2,...")
    values = [_coerce(v) for v in raw.split(",")]
    print(f"\nSweeping {key!r} over {values} "
          f"({len(values)} ensemble instances, one shared case) ...")
    ens = Ensemble.sweep(lambda: build_tgv_case(n=args.n),
                         base, key, values)
    ens.run(args.steps, dt)

    for inst, value in zip(ens, values):
        d = inst.solver.last_diag
        print(f"  {inst.name}: {key}={value!r} -> "
              f"T [{d.t_min:.1f}, {d.t_max:.1f}] K, "
              f"|U|max {d.max_velocity:.2f} m/s, "
              f"iters {d.solver_iterations}")

    print("\nEnsemble cost report (ledgered):")
    for line in ens.cost_report().table():
        print("  " + line)
    mem = ens.memory_report()
    print(f"\nShared-cache memory: {mem['ensemble_bytes']/1e6:.2f} MB for "
          f"the ensemble vs {mem['independent_bytes']/1e6:.2f} MB for "
          f"{len(ens)} independent solvers "
          f"({mem['ratio']:.2f}x)")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--chemistry", choices=CHOICES, default="none",
                    help="chemistry backend (default: none)")
    ap.add_argument("--trust-gate", choices=TRUST_GATE_MODES,
                    default="domain+audit",
                    help="per-cell trust gate of the hybrid-trained "
                         "backend: scaled-space domain check against "
                         "the artifact's training manifold, optionally "
                         "plus direct-backend spot audits "
                         "(default: domain+audit)")
    ap.add_argument("--transport", choices=TRANSPORT_CHOICES,
                    default="coupled",
                    help="species/momentum transport path "
                         "(default: coupled)")
    ap.add_argument("--ranks", type=int, default=0,
                    help="also run the domain-decomposed executor over "
                         "N ranks -- executed halo exchanges and "
                         "allreduces through the in-process fabric, not "
                         "an analytic model -- and report the "
                         "serial-vs-decomposed max |delta| + the "
                         "measured message ledger (default: off)")
    ap.add_argument("--balance", choices=("none", "static", "dynamic"),
                    default="none",
                    help="chemistry load balancing for the decomposed "
                         "run (with --ranks): migrate stiff cells to "
                         "underloaded ranks and print the "
                         "chemistry-balance ledger summary "
                         "(default: none)")
    ap.add_argument("--profile", action="store_true",
                    help="print the per-stage time + hot-path allocation "
                         "table from StepTimings after the run (the "
                         "fast-assembly path reports ~zero "
                         "construction/solving allocations once warm; "
                         "compare with --no-fast-assembly)")
    ap.add_argument("--no-fast-assembly", action="store_true",
                    help="use the allocating reference assembly path "
                         "instead of the zero-reassembly workspace")
    ap.add_argument("--sweep", metavar="KEY=V1,V2,...", default=None,
                    help="instead of one run, fan the configured "
                         "settings over an in-process ensemble: one "
                         "instance per value of the (possibly dotted) "
                         "settings field KEY, sharing one "
                         "mesh/mechanism/workspace; prints the "
                         "per-instance cost table and the shared-memory "
                         "footprint (e.g. --sweep n_correctors=1,2,3)")
    ap.add_argument("--steps", type=int, default=5)
    ap.add_argument("--n", type=int, default=16, help="cells per side")
    args = ap.parse_args()
    if args.balance != "none" and args.ranks <= 0:
        ap.error("--balance requires --ranks N")

    # Every flag lands in one validated settings object; the solvers
    # below are built from it.
    settings = SolverSettings(
        chemistry="none",  # the demo backends are built explicitly
        transport=args.transport,
        fast_assembly=not args.no_fast_assembly)
    dt = 1e-8  # the paper's 10 ns step

    if args.sweep:
        run_sweep(args, settings, dt)
        return

    print(f"Building the supercritical TGV case ({args.n}^3 cells, 10 MPa)...")
    case = build_tgv_case(n=args.n)
    print(f"  mesh: {case.mesh.n_cells} cells, "
          f"{case.mesh.n_internal_faces} internal faces (triply periodic)")
    print(f"  T in [{case.temperature.min():.0f}, "
          f"{case.temperature.max():.0f}] K, p = "
          f"{case.pressure.values[0]/1e6:.0f} MPa")

    chemistry = build_chemistry(args.chemistry, case.mech, case, dt,
                                args.trust_gate)
    solver = DeepFlameSolver.from_settings(case, settings,
                                           chemistry=chemistry)
    print(f"  initial density range: [{solver.rho.min():.1f}, "
          f"{solver.rho.max():.1f}] kg/m^3 (real-fluid Peng-Robinson)")

    print(f"\nRunning {args.steps} steps at dt = {dt:.0e} s "
          f"(chemistry: {args.chemistry}, transport: {args.transport}) ...")
    for _ in range(args.steps):
        d = solver.step(dt)
        print(f"  step {d.step}: mass {d.total_mass:.6e} kg, "
              f"T [{d.t_min:.1f}, {d.t_max:.1f}] K, "
              f"|U|max {d.max_velocity:.2f} m/s, "
              f"solver iters {d.solver_iterations}")

    tm = solver.last_timings
    total = tm.total
    if total > 0:
        print("\nComponent breakdown of the last step (the Fig. 11 "
              "categories):")
        for name, t in [("DNN/properties", tm.dnn),
                        ("Construction", tm.construction),
                        ("Solving", tm.solving), ("Other", tm.other)]:
            print(f"  {name:15s} {t*1e3:8.2f} ms  ({t/total*100:4.1f} %)")

    if args.profile:
        mode = "reference" if args.no_fast_assembly else "fast-assembly"
        print(f"\nPer-stage profile of the last step ({mode} path; "
              "allocs = hot-path buffers materialized):")
        print(f"  {'stage':15s} {'time [ms]':>10s} {'allocs':>7s}")
        for name, secs, allocs in tm.rows():
            print(f"  {name:15s} {secs*1e3:10.2f} {allocs:7d}")
        print(f"  {'total':15s} {tm.total*1e3:10.2f} {tm.total_allocs:7d}")

    if args.ranks > 0:
        run_decomposed(args, case.mech, dt)

    print("\nMeasuring the per-step transport speedup "
          "(coupled vs per-species, frozen chemistry) ...")
    per_step = measure_transport_speedup(
        lambda: build_tgv_case(n=args.n, mech=case.mech), dt)
    print(f"  per-species: {per_step['per-species']*1e3:7.2f} ms/step "
          "(construction + solving)")
    print(f"  coupled:     {per_step['coupled']*1e3:7.2f} ms/step")
    print(f"  speedup:     {per_step['per-species']/per_step['coupled']:.2f}x")

    stats = getattr(solver.chemistry, "last_backend_stats", None)
    if stats is not None:
        print(f"\nChemistry backend '{stats.backend}': "
              f"{stats.n_cells} cells at {stats.cells_per_second:.0f} "
              f"cells/s, work imbalance {stats.load_imbalance:.2f}")
        if stats.sub_batches:
            print("  sub-batches: " + ", ".join(
                f"{label}:{cells}" for label, cells, _ in stats.sub_batches))
        for child, st in stats.per_backend.items():
            print(f"  {child}: {st.n_cells} cells, work {st.total_work:.0f}")

    counters = getattr(solver.chemistry, "gate_counters", None)
    if counters is not None:
        print("\nTrust-gate counters (cumulative over the run):")
        for key, val in counters.items():
            print(f"  {key:16s} {val}")


if __name__ == "__main__":
    main()
