"""Quickstart: a small supercritical reactive Taylor-Green vortex.

Builds the paper's TGV case (10 MPa LOX/CH4, O2 at 150 K / CH4 at
300 K, Taylor-Green velocity at u0 = 4 m/s), runs a few time steps of
the DeepFlame solver with direct Peng-Robinson real-fluid properties,
and prints per-step diagnostics and the component time breakdown.

Run:  python examples/quickstart.py
"""

from repro.core import DeepFlameSolver, NoChemistry, build_tgv_case


def main() -> None:
    print("Building the supercritical TGV case (16^3 cells, 10 MPa)...")
    case = build_tgv_case(n=16)
    print(f"  mesh: {case.mesh.n_cells} cells, "
          f"{case.mesh.n_internal_faces} internal faces (triply periodic)")
    print(f"  T in [{case.temperature.min():.0f}, "
          f"{case.temperature.max():.0f}] K, p = "
          f"{case.pressure.values[0]/1e6:.0f} MPa")

    solver = DeepFlameSolver(case, chemistry=NoChemistry())
    print(f"  initial density range: [{solver.rho.min():.1f}, "
          f"{solver.rho.max():.1f}] kg/m^3 (real-fluid Peng-Robinson)")

    dt = 1e-8  # the paper's 10 ns step
    print(f"\nRunning 5 steps at dt = {dt:.0e} s ...")
    for _ in range(5):
        d = solver.step(dt)
        print(f"  step {d.step}: mass {d.total_mass:.6e} kg, "
              f"T [{d.t_min:.1f}, {d.t_max:.1f}] K, "
              f"|U|max {d.max_velocity:.2f} m/s, "
              f"solver iters {d.solver_iterations}")

    tm = solver.last_timings
    total = tm.total
    print("\nComponent breakdown of the last step (the Fig. 11 categories):")
    for name, t in [("DNN/properties", tm.dnn),
                    ("Construction", tm.construction),
                    ("Solving", tm.solving), ("Other", tm.other)]:
        print(f"  {name:15s} {t*1e3:8.2f} ms  ({t/total*100:4.1f} %)")


if __name__ == "__main__":
    main()
