"""Train and register the trust-gated hybrid chemistry surrogate.

Closes the surrogate training loop end-to-end at laptop scale:

1. sample the target regime(s) with the stiffness-graded pipeline
   (``repro.dnn.dataset``) -- chemistry-only trajectories plus
   transport-coupled solver states (per-cell pressure drift included),
   labels from the direct backend, thinned per stiffness bin,
2. train an ODENet on the sampled manifold (``repro.dnn.training``)
   and save it as the base version,
3. **close the loop**: run the solver with the freshly trained hybrid
   in the chemistry loop, collect the states the surrogate steers the
   flow into (its own prediction errors perturb trace species, so
   those states drift off the direct-sampled manifold), label them
   with the direct backend and fine-tune -- otherwise the drift
   compounds step over step and the deployed error is several times
   the training error,
4. evaluate max |dY| error against the direct backend and save the
   fine-tuned net as a child version (registry lineage records the
   parent) into the versioned model registry
   (``repro.dnn.registry.ModelRegistry``).

The committed ``tgv-hotspot`` artifact under ``src/repro/dnn/models/``
was produced by this script with the default arguments; benches and
the quickstart's ``--chemistry hybrid-trained`` mode load its latest
version.

Run:  python examples/train_hybrid_model.py [--epochs 900] [--name tgv-hotspot]
"""

import argparse
import time

import numpy as np

from repro.chemistry import load_mechanism
from repro.core import SolverSettings, build_chemistry
from repro.dnn import (
    ModelRegistry,
    ODENet,
    build_training_set,
    sample_solver_states,
)
from repro.dnn.training import train_mlp


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--name", default="tgv-hotspot",
                    help="registry model name (default: tgv-hotspot)")
    ap.add_argument("--regimes", default="hotspot",
                    help="comma-separated sampling regimes "
                         "(default: hotspot)")
    ap.add_argument("--hidden", default="64,64",
                    help="hidden layer sizes (default: 64,64)")
    ap.add_argument("--epochs", type=int, default=900)
    ap.add_argument("--dt", type=float, default=1e-8,
                    help="chemistry step the labels integrate over")
    ap.add_argument("--transport-steps", type=int, default=4,
                    help="solver-in-the-loop sampling steps "
                         "(default: 4)")
    ap.add_argument("--max-per-bin", type=int, default=4000,
                    help="stiffness-graded thinning cap per bin "
                         "(default: 4000; the frozen bin dominates "
                         "raw sampling)")
    ap.add_argument("--loop-steps", type=int, default=4,
                    help="closed-loop solver steps sampled with the "
                         "trained hybrid in the loop (default: 4, the "
                         "hotspot case's stable acoustic window; 0 "
                         "skips the closing round)")
    ap.add_argument("--loop-epochs", type=int, default=400,
                    help="fine-tune epochs of the closing round "
                         "(default: 400)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--registry", default=None,
                    help="registry root (default: the in-package "
                         "src/repro/dnn/models)")
    args = ap.parse_args()

    mech = load_mechanism()
    regimes = tuple(args.regimes.split(","))
    hidden = tuple(int(h) for h in args.hidden.split(","))

    print(f"Sampling regimes {regimes} at dt={args.dt:.0e} ...")
    t0 = time.perf_counter()
    full = build_training_set(mech, regimes=regimes, dt=args.dt,
                              seed=args.seed,
                              transport_steps=args.transport_steps,
                              max_per_bin=args.max_per_bin)
    print(f"  {full.n_samples} pairs in {time.perf_counter()-t0:.1f} s; "
          f"coverage {full.coverage()}")

    net = ODENet(mech, hidden=hidden, seed=args.seed)
    print(f"Training ODENet hidden={hidden} for {args.epochs} epochs ...")
    t0 = time.perf_counter()
    hist = net.fit(full.t, full.p, full.y, full.delta_y, dt=full.dt,
                   epochs=args.epochs, lr=3e-3, batch_size=128,
                   seed=args.seed)
    train_secs = time.perf_counter() - t0
    print(f"  {train_secs:.0f} s; loss {hist.train_loss[0]:.3e} -> "
          f"{hist.final_train:.3e} (val {hist.final_val:.3e})")

    def max_err(ts):
        pred = net.predict_delta_y(ts.t, ts.p, ts.y, ts.dt)
        return float(np.abs(pred - ts.delta_y).max())

    err = max_err(full)
    baseline = float(np.abs(full.delta_y).max())
    print(f"  max|dY error| {err:.2e}  (predict-zero baseline "
          f"{baseline:.2e})")

    registry = (ModelRegistry(args.registry) if args.registry
                else ModelRegistry.default())
    replay = full.thin(max_per_bin=300, seed=args.seed)
    base_info = {
        "regimes": list(regimes), "dt": full.dt,
        "epochs": args.epochs, "seed": args.seed,
        "transport_steps": args.transport_steps,
        "max_per_bin": args.max_per_bin,
        "n_samples": full.n_samples,
        "final_train_loss": hist.final_train,
        "final_val_loss": hist.final_val,
        "max_abs_dy_error": err,
        "train_seconds": round(train_secs, 1),
    }
    version = registry.save(net, args.name, train_info=base_info,
                            replay=replay)
    print(f"Saved {args.name}/{version} to {registry.root} "
          f"(replay subset: {replay.n_samples} pairs)")

    if args.loop_steps <= 0:
        return
    # -- closing round: sample the manifold the *trained* hybrid
    # steers the solver into, and train its errors away before they
    # can compound step over step.
    print(f"Closing the loop: {args.loop_steps} solver steps with the "
          f"trained hybrid in the chemistry loop ...")
    t0 = time.perf_counter()
    loop_parts = []
    for r in regimes:
        chem = build_chemistry(
            SolverSettings(chemistry="hybrid-trained", trust_gate="domain",
                           chemistry_options={"odenet": net}), mech)
        loop_parts.append(sample_solver_states(
            mech, regime=r, dt=args.dt, steps=args.loop_steps,
            chemistry=chem))
    loop = loop_parts[0]
    for part in loop_parts[1:]:
        loop = loop.merge(part)
    err_loop_before = max_err(loop)

    # frozen scalers (the base feature geometry stays valid); the
    # trust region expands to cover the self-steered states
    combined = full.merge(loop)
    feats = net.scaled_features(combined.t, combined.p, combined.y,
                                combined.dt)
    targets = net.out_scaler.transform(combined.delta_y)
    train_mlp(net.net, feats, targets, epochs=args.loop_epochs, lr=1e-3,
              batch_size=128, seed=args.seed, lr_decay=0.995)
    net.domain = net.domain.expand(
        net.scaled_features(loop.t, loop.p, loop.y, loop.dt))

    err_loop_after = max_err(loop)
    err_full_after = max_err(full)
    print(f"  {time.perf_counter()-t0:.0f} s; self-steered states "
          f"max|dY error| {err_loop_before:.2e} -> {err_loop_after:.2e} "
          f"(base manifold now {err_full_after:.2e})")
    loop_info = dict(base_info)
    loop_info.update({
        "closed_loop": True, "loop_steps": args.loop_steps,
        "loop_epochs": args.loop_epochs,
        "loop_samples": loop.n_samples,
        "max_abs_dy_error": err_full_after,
        "loop_max_abs_dy_error_before": err_loop_before,
        "loop_max_abs_dy_error": err_loop_after,
    })
    version = registry.save(net, args.name, parent=version,
                            train_info=loop_info, replay=replay)
    print(f"Saved {args.name}/{version} to {registry.root} "
          f"(closed-loop child of {registry.lineage(args.name)[-1]})")


if __name__ == "__main__":
    main()
