"""Scaling study: regenerate the paper's headline numbers from the
calibrated machine models (Figs. 13-14, Table 1 'our work' rows).

Run:  python examples/scaling_study.py
"""

from repro.runtime import (
    FUGAKU,
    SUNWAY,
    OptimizationConfig,
    strong_scaling,
    tgv_workload,
    weak_scaling,
)


def show(series, title):
    print(f"\n{title} [{series.machine}, {series.precision}]")
    print(f"{'nodes':>8} {'cells':>12} {'loop [s]':>10} {'PFlop/s':>9} "
          f"{'% peak':>7} {'eff':>6} {'s/DoF/cycle':>12}")
    for r in series.rows():
        print(f"{r['nodes']:8d} {r['cells']:12.3e} {r['loop_time_s']:10.3f} "
              f"{r['PFlop/s']:9.1f} {r['pct_peak']*100:6.1f}% "
              f"{r['efficiency']*100:5.1f}% {r['s/DoF/cycle']:12.2e}")


def main() -> None:
    sunway_nodes = [3072, 6144, 12288, 24576, 49152, 98304]
    fugaku_nodes = [4608, 9216, 18432, 36864, 73728]

    wl_s = tgv_workload(19_327_352_832)
    show(weak_scaling(SUNWAY, wl_s, sunway_nodes), "Weak scaling (Fig. 14a)")
    show(weak_scaling(SUNWAY, wl_s, sunway_nodes,
                      OptimizationConfig.optimized(mixed_precision=False)),
         "Weak scaling (Fig. 14a)")
    show(strong_scaling(SUNWAY, wl_s, sunway_nodes),
         "Strong scaling (Fig. 13a)")

    wl_f = tgv_workload(9_663_676_416)
    show(weak_scaling(FUGAKU, wl_f, fugaku_nodes), "Weak scaling (Fig. 14b)")
    show(strong_scaling(FUGAKU, wl_f, fugaku_nodes),
         "Strong scaling (Fig. 13b)")

    print("\nPaper anchors: Sunway 1186.9 PF (21.8 %) mixed / 438.9 PF "
          "(32.3 %) fp32 at 98,304 nodes;")
    print("Fugaku 316.5 PF (31.8 %) / 186.5 PF (37.4 %) at 73,728 nodes;")
    print("best time-to-solution 1.2e-9 s/DoF/cycle (mixed-FP16, Sunway).")


if __name__ == "__main__":
    main()
