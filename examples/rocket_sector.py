"""Rocket-engine sector: mesh, two-level decomposition and a few
solver steps -- the paper's real-world workflow at laptop scale.

Builds a 22.5-degree sector of the synthetic LOX/CH4 combustor
(injector plate, chamber, converging-diverging nozzle), decomposes it
with the two-level process x thread scheme, reports the Sec. 3.1/3.2
statistics, and advances the flow a few steps.

Run:  python examples/rocket_sector.py
"""

import numpy as np

from repro.core import DeepFlameSolver, IdealGasProperties, NoChemistry, build_rocket_case
from repro.mesh import cell_graph_from_mesh, partition_renumbering
from repro.partition import balance_stats, decompose_two_level, offdiag_fraction
from repro.sparse import build_block_converter
from repro.solvers import SolverControls


def main() -> None:
    print("Building one 22.5-degree combustor sector (20 MPa)...")
    case = build_rocket_case(n_sectors=1, nr=8, ntheta_per_sector=12, nz=32)
    mesh = case.mesh
    print(f"  {mesh.n_cells} cells, patches: "
          f"{[p.name for p in mesh.patches]}")
    print(f"  T range [{case.temperature.min():.0f}, "
          f"{case.temperature.max():.0f}] K (cryogenic injection, hot core)")

    print("\nTwo-level decomposition (8 processes x 4 threads):")
    dec = decompose_two_level(mesh, 8, 4)
    stats = balance_stats(dec.process_membership)
    print(f"  cells/process: mean {stats.mean:.0f}, max {stats.max:.0f}, "
          f"std {stats.std:.1f} (imbalance {stats.imbalance:.2%})")
    print(f"  avg neighbours {dec.avg_neighbours():.1f}, "
          f"avg shared faces/pair {dec.avg_shared_faces_per_pair():.0f}")

    print("\nThread-level block structure (Sec. 3.2):")
    graph = cell_graph_from_mesh(mesh)
    from repro.partition import partition_graph

    mem = partition_graph(graph, 16)
    perm = partition_renumbering(graph, mem)
    mesh2 = mesh.renumbered(perm)
    from repro.sparse import LDUMatrix

    nif = mesh2.n_internal_faces
    ldu = LDUMatrix(mesh2.n_cells, mesh2.owner[:nif], mesh2.neighbour)
    ldu.upper[:] = -1.0
    ldu.lower[:] = -1.0
    deg = (np.bincount(mesh2.owner[:nif], minlength=mesh2.n_cells)
           + np.bincount(mesh2.neighbour, minlength=mesh2.n_cells))
    ldu.diag[:] = deg + 0.2
    blk = build_block_converter(ldu, mem[np.argsort(perm)]).convert(ldu)
    print(f"  16x16 blocks: {blk.n_nonzero_blocks} non-empty, "
          f"off-diagonal nnz {blk.offdiag_nnz_fraction():.2%} "
          f"(naive ordering: {offdiag_fraction(graph, np.arange(graph.n_vertices) * 16 // graph.n_vertices):.2%})")

    print("\nAdvancing the sector flow 3 steps...")
    solver = DeepFlameSolver(
        case, properties=IdealGasProperties(case.mech),
        chemistry=NoChemistry(), solve_momentum=False,
        scalar_controls=SolverControls(tolerance=1e-9, rel_tol=1e-4,
                                       max_iterations=300))
    for _ in range(3):
        d = solver.step(2e-8)
        print(f"  step {d.step}: mass {d.total_mass:.4e} kg, "
              f"T [{d.t_min:.0f}, {d.t_max:.0f}] K, "
              f"iters {d.solver_iterations}")
    print("\nFull-engine weak scaling sweeps sectors 1..16 "
          "(see benchmarks/bench_fig12_struct_vs_unstruct.py).")


if __name__ == "__main__":
    main()
