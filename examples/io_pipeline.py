"""I/O pipeline demo: the three Sec. 3.4 optimizations end to end.

Writes a collated field file, builds its index, reads it back with all
three strategies (verifying identical data), then scales the access
pattern to the paper's 589,824 processes through the filesystem cost
model and shows the runtime-refinement storage reduction.

Run:  python examples/io_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.io import (
    IOCostModel,
    measure_strategies,
    storage_comparison,
    write_collated,
    write_index,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rho.foamcoll"
        rng = np.random.default_rng(0)
        n_ranks = 32
        write_collated(path, [rng.random(4096) for _ in range(n_ranks)], "rho")
        ipath = write_index(path)
        print(f"wrote {path.stat().st_size/1e3:.0f} kB collated file "
              f"+ index {ipath.name}")

        print(f"\nreading back with all three strategies ({n_ranks} ranks):")
        for name, t in measure_strategies(path, n_ranks).items():
            print(f"  {name:24s} {t.wall_time*1e3:7.2f} ms, "
                  f"{t.file_opens} opens, scatter {t.scatter_bytes} B")

    print("\ncost model at the paper's scale (589,824 processes, 16 GB):")
    model = IOCostModel()
    p, v = 589_824, 16e9
    print(f"  master read + scatter : {model.master_read_scatter(v, p):9.1f} s")
    print(f"  parallel read         : {model.parallel_read(v, p):9.1f} s")
    print(f"  grouped parallel      : {model.grouped_parallel_read(v, p):9.1f} s"
          f"  (group ~ sqrt(P) = {int(np.sqrt(p))})")

    print("\nruntime mesh refinement (Sec. 3.4.1):")
    cmp = storage_comparison(18_874_368, 5)
    print(f"  {cmp['coarse_cells']/1e6:.0f} M coarse cells -> "
          f"{cmp['fine_cells']/1e9:.0f} B cells after 5 refinements")
    print(f"  on-disk fine mesh+fields: {cmp['fine_bytes']/1e12:.0f} TB "
          "(paper: ~121 TB)")
    print(f"  coarse input actually read: {cmp['coarse_bytes']/1e9:.1f} GB "
          "(paper: 16 GB)")


if __name__ == "__main__":
    main()
